#include "graph/op.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dcn::graph {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "Input";
    case OpKind::kConv2d:
      return "Conv2d";
    case OpKind::kMaxPool:
      return "MaxPool";
    case OpKind::kAdaptivePool:
      return "AdaptivePool";
    case OpKind::kReLU:
      return "ReLU";
    case OpKind::kLinear:
      return "Linear";
    case OpKind::kFlatten:
      return "Flatten";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kOutput:
      return "Output";
    case OpKind::kConstant:
      return "Constant";
    case OpKind::kFusedConvReLU:
      return "FusedConvReLU";
    case OpKind::kFusedLinearReLU:
      return "FusedLinearReLU";
  }
  return "Unknown";
}

bool is_fused_kind(OpKind kind) {
  return kind == OpKind::kFusedConvReLU || kind == OpKind::kFusedLinearReLU;
}

OpKind fused_base_kind(OpKind kind) {
  switch (kind) {
    case OpKind::kFusedConvReLU:
      return OpKind::kConv2d;
    case OpKind::kFusedLinearReLU:
      return OpKind::kLinear;
    default:
      return kind;
  }
}

std::int64_t TensorDesc::numel() const {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

std::string TensorDesc::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) os << 'x';
    os << dims[i];
  }
  os << ')';
  return os.str();
}

std::int64_t OpNode::parameter_count(const TensorDesc& input_desc) const {
  switch (kind) {
    case OpKind::kConv2d:
    case OpKind::kFusedConvReLU: {
      DCN_CHECK(input_desc.dims.size() == 3) << "conv input must be CHW";
      const std::int64_t in_c = input_desc.dims[0];
      return attrs.out_channels * in_c * attrs.kernel * attrs.kernel +
             attrs.out_channels;
    }
    case OpKind::kLinear:
    case OpKind::kFusedLinearReLU: {
      const std::int64_t in_f = input_desc.numel();
      return attrs.out_features * in_f + attrs.out_features;
    }
    default:
      return 0;
  }
}

double OpNode::flops(const TensorDesc& input_desc) const {
  switch (kind) {
    // A fused conv+ReLU costs exactly the conv's MACs: the max(x, 0) rides
    // the epilogue store of output elements that are already in registers,
    // so it adds no counted work — summing the constituents' FLOPs would
    // double-charge the output sweep.
    case OpKind::kConv2d:
    case OpKind::kFusedConvReLU: {
      DCN_CHECK(output.dims.size() == 3) << "conv output must be CHW";
      const std::int64_t in_c = input_desc.dims[0];
      const double per_output = 2.0 * in_c * attrs.kernel * attrs.kernel;
      return per_output * static_cast<double>(output.numel());
    }
    case OpKind::kLinear:
    case OpKind::kFusedLinearReLU:
      return 2.0 * static_cast<double>(input_desc.numel()) *
             static_cast<double>(attrs.out_features);
    case OpKind::kMaxPool:
      return static_cast<double>(output.numel()) * attrs.kernel * attrs.kernel;
    case OpKind::kAdaptivePool: {
      // Each output cell scans roughly (H/out)*(W/out) inputs.
      const double window =
          static_cast<double>(input_desc.numel()) /
          std::max<double>(1.0, static_cast<double>(output.numel()));
      return static_cast<double>(output.numel()) * window;
    }
    case OpKind::kReLU:
      return static_cast<double>(output.numel());
    case OpKind::kFlatten:
    case OpKind::kConcat:
    case OpKind::kInput:
    case OpKind::kOutput:
    case OpKind::kConstant:
      return 0.0;
  }
  return 0.0;
}

double OpNode::activation_bytes(const TensorDesc& input_desc) const {
  // Folded constants are materialized once with the weights; they stream no
  // activations at inference time.
  if (kind == OpKind::kConstant) return 0.0;
  // One input read plus one output write — for fused kinds this is the fix
  // for the double-count bug: the unfused twin's accounting is
  //   conv: (in + mid) + relu: (mid + out)  with mid == out,
  // i.e. the intermediate pre-activation tensor is charged twice, but the
  // fused kernel never writes it to DRAM at all.
  return 4.0 * (static_cast<double>(input_desc.numel()) +
                static_cast<double>(output.numel()));
}

}  // namespace dcn::graph
