#include "graph/op.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dcn::graph {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "Input";
    case OpKind::kConv2d:
      return "Conv2d";
    case OpKind::kMaxPool:
      return "MaxPool";
    case OpKind::kAdaptivePool:
      return "AdaptivePool";
    case OpKind::kReLU:
      return "ReLU";
    case OpKind::kLinear:
      return "Linear";
    case OpKind::kFlatten:
      return "Flatten";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kOutput:
      return "Output";
  }
  return "Unknown";
}

std::int64_t TensorDesc::numel() const {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

std::string TensorDesc::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) os << 'x';
    os << dims[i];
  }
  os << ')';
  return os.str();
}

std::int64_t OpNode::parameter_count(const TensorDesc& input_desc) const {
  switch (kind) {
    case OpKind::kConv2d: {
      DCN_CHECK(input_desc.dims.size() == 3) << "conv input must be CHW";
      const std::int64_t in_c = input_desc.dims[0];
      return attrs.out_channels * in_c * attrs.kernel * attrs.kernel +
             attrs.out_channels;
    }
    case OpKind::kLinear: {
      const std::int64_t in_f = input_desc.numel();
      return attrs.out_features * in_f + attrs.out_features;
    }
    default:
      return 0;
  }
}

double OpNode::flops(const TensorDesc& input_desc) const {
  switch (kind) {
    case OpKind::kConv2d: {
      DCN_CHECK(output.dims.size() == 3) << "conv output must be CHW";
      const std::int64_t in_c = input_desc.dims[0];
      const double per_output = 2.0 * in_c * attrs.kernel * attrs.kernel;
      return per_output * static_cast<double>(output.numel());
    }
    case OpKind::kLinear:
      return 2.0 * static_cast<double>(input_desc.numel()) *
             static_cast<double>(attrs.out_features);
    case OpKind::kMaxPool:
      return static_cast<double>(output.numel()) * attrs.kernel * attrs.kernel;
    case OpKind::kAdaptivePool: {
      // Each output cell scans roughly (H/out)*(W/out) inputs.
      const double window =
          static_cast<double>(input_desc.numel()) /
          std::max<double>(1.0, static_cast<double>(output.numel()));
      return static_cast<double>(output.numel()) * window;
    }
    case OpKind::kReLU:
      return static_cast<double>(output.numel());
    case OpKind::kFlatten:
    case OpKind::kConcat:
    case OpKind::kInput:
    case OpKind::kOutput:
      return 0.0;
  }
  return 0.0;
}

double OpNode::activation_bytes(const TensorDesc& input_desc) const {
  return 4.0 * (static_cast<double>(input_desc.numel()) +
                static_cast<double>(output.numel()));
}

}  // namespace dcn::graph
