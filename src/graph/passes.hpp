// Graph optimizer pass framework.
//
// A Pass is one rewrite rule over the inference DAG (conv+ReLU fusion,
// constant folding, dead-op elimination, canonicalization); a PassManager
// runs a pipeline of passes round-robin to fixpoint. Passes rewrite a
// MutableGraph — a scratch view with stable ids, tombstone deletion, and
// edge redirection — and the manager compacts the survivors back into an
// immutable graph::Graph that IOS schedules directly. The design follows
// popart's pattern registry (each rule is a small named class found by
// name in a process-wide registry) and its const-expr folding utilities,
// scaled down to this repo's cost-oriented IR.
//
// Why this matters: the tensor engine already fuses bias+ReLU into GEMM
// epilogue stores, but the graph handed to the IOS scheduler still carried
// one node per op — so the cost model priced a kernel launch and a DRAM
// round-trip of the pre-activation tensor that the engine never performs.
// Running these passes *before* IOS DP makes schedules, simulated costs,
// and schedule-cache keys all see the fused reality.
//
// Determinism: passes visit nodes in ascending id order and the manager's
// pipeline order is fixed, so optimization is a pure function of the input
// graph — the same graph always optimizes to the same graph.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dcn::graph {

/// Scratch rewrite view over a Graph. Node ids stay stable while passes
/// mutate; erased nodes become tombstones skipped by live_ids(); build()
/// compacts survivors (in original insertion order, which every rewrite
/// here preserves as a topological order) into a fresh validated Graph.
class MutableGraph {
 public:
  explicit MutableGraph(const Graph& graph);

  /// Ids ever allocated (live or dead); valid id range is [0, capacity()).
  std::size_t capacity() const { return nodes_.size(); }
  std::size_t live_count() const;

  OpNode& node(OpId id);
  const OpNode& node(OpId id) const;
  bool alive(OpId id) const;

  /// Live ids in insertion order.
  std::vector<OpId> live_ids() const;

  /// Live consumers of `id`'s output, ascending.
  std::vector<OpId> consumers(OpId id) const;

  /// Whether redirecting `from` -> `to` keeps all input lists duplicate-free
  /// (a consumer reading both tensors would end up with a double edge).
  bool can_redirect(OpId from, OpId to) const;

  /// Point every live consumer of `from` at `to`. Requires can_redirect().
  void redirect(OpId from, OpId to);

  /// Tombstone a node; its consumers must have been redirected already.
  void erase(OpId id);

  /// Compact into a validated Graph (Graph::add_op re-checks every edge).
  Graph build() const;

 private:
  std::vector<OpNode> nodes_;
  std::vector<bool> alive_;
};

/// One rewrite rule. run() performs a single sweep and reports whether it
/// changed the graph; the PassManager re-runs the pipeline until no pass
/// reports a change (so each pass may be written as a simple local sweep).
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual bool run(MutableGraph& graph) const = 0;
};

/// Process-wide name -> factory table (the popart pattern-registry idiom).
/// The built-in passes register themselves on first access; callers can add
/// project-specific rules under new names.
class PassRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Pass>()>;

  static PassRegistry& instance();

  /// Throws ConfigError if `name` is already taken.
  void add(const std::string& name, Factory factory);
  /// Throws ConfigError for unknown names.
  std::unique_ptr<Pass> create(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Built-in pass names (as registered in the PassRegistry).
inline constexpr const char* kCanonicalizePass = "canonicalize";
inline constexpr const char* kFuseConvReLUPass = "fuse-conv-relu";
inline constexpr const char* kFuseLinearReLUPass = "fuse-linear-relu";
inline constexpr const char* kConstantFoldingPass = "constant-folding";
inline constexpr const char* kDeadOpEliminationPass = "dead-op-elimination";

struct PassStats {
  /// Full pipeline sweeps until fixpoint (including the final no-op sweep).
  int iterations = 0;
  /// Per-pass count of sweeps that changed the graph.
  std::map<std::string, int> rewrites;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

/// Runs its passes in order, repeating the whole pipeline until a full
/// sweep changes nothing (bounded by max_iterations as a safety net against
/// a rule pair that ping-pongs).
class PassManager {
 public:
  explicit PassManager(int max_iterations = 8);

  void add(std::unique_ptr<Pass> pass);
  /// Convenience: instantiate a registered pass by name.
  void add(const std::string& registered_name);

  /// Optimize `graph`; the input is untouched. The result is shape-validated
  /// before it is returned.
  Graph run(const Graph& graph, PassStats* stats = nullptr) const;

 private:
  int max_iterations_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Which rewrites the standard pipeline applies. Field order is pipeline
/// order: canonicalize, fuse, fold, eliminate.
struct OptimizeOptions {
  bool canonicalize = true;
  /// conv+bias+ReLU and linear+bias+ReLU into single fused kernel nodes.
  bool fuse = true;
  bool fold_constants = true;
  bool eliminate_dead = true;
  int max_iterations = 8;
};

/// The standard optimization pipeline over the registry's built-in passes.
Graph optimize_graph(const Graph& graph, const OptimizeOptions& options = {},
                     PassStats* stats = nullptr);

/// Scheduled kernel launches of a graph: its device ops (what one inference
/// costs in launches — the paper's Fig. 7 x-axis).
std::size_t device_op_count(const Graph& graph);

}  // namespace dcn::graph
