// Inference-graph operator nodes.
//
// The graph IR describes a trained model's inference computation as a DAG
// of operators with static per-sample tensor shapes. It is the common
// language between the IOS scheduler (which partitions branched blocks into
// stages/groups) and the simulated GPU (whose cost model consumes each
// operator's FLOP count, memory traffic, and parallelism).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcn::graph {

enum class OpKind {
  kInput,
  kConv2d,
  kMaxPool,
  kAdaptivePool,
  kReLU,
  kLinear,
  kFlatten,
  kConcat,
  kOutput,
  /// Producer-less node whose output was computed at optimization time
  /// (constant folding). Materialized once alongside the weights; launches
  /// nothing and moves no per-inference activation bytes.
  kConstant,
  /// Conv2d with the trailing ReLU applied in the GEMM epilogue store —
  /// one kernel launch, no intermediate pre-activation tensor in DRAM.
  kFusedConvReLU,
  /// Linear with the trailing ReLU fused the same way.
  kFusedLinearReLU,
};

const char* op_kind_name(OpKind kind);

/// Whether `kind` is a fused compute op (base op + epilogue ReLU).
bool is_fused_kind(OpKind kind);

/// The compute op a fused kind wraps (kConv2d / kLinear); identity for
/// unfused kinds.
OpKind fused_base_kind(OpKind kind);

/// Per-sample tensor extents (no batch dimension; batch is a runtime knob).
struct TensorDesc {
  std::vector<std::int64_t> dims;

  std::int64_t numel() const;
  std::string to_string() const;
};

/// Operator attributes; which fields are meaningful depends on `kind`.
struct OpAttrs {
  std::int64_t kernel = 0;
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t out_channels = 0;   // conv
  std::int64_t out_features = 0;   // linear
  std::int64_t pool_out = 0;       // adaptive pool target grid
};

using OpId = std::int32_t;
inline constexpr OpId kInvalidOp = -1;

struct OpNode {
  OpId id = kInvalidOp;
  OpKind kind = OpKind::kInput;
  std::string name;
  OpAttrs attrs;
  std::vector<OpId> inputs;
  TensorDesc output;

  /// Learnable parameter count (conv filters / linear weights).
  std::int64_t parameter_count(const TensorDesc& input_desc) const;

  /// Floating-point operations per sample.
  double flops(const TensorDesc& input_desc) const;

  /// Bytes moved per sample (activation reads + writes; float32), not
  /// counting weights — those are charged once per kernel launch. Fused
  /// kinds count only the real input read and final output write: the
  /// pre-activation intermediate their unfused twin would round-trip
  /// through DRAM never exists, so it must not be double-counted.
  double activation_bytes(const TensorDesc& input_desc) const;
};

}  // namespace dcn::graph
