// Branched-block extraction.
//
// IOS (Ding et al., MLSys'21) optimizes "blocks": convergent branched
// substructures whose entry dominates and whose exit post-dominates every
// interior operator. We segment the whole graph into an alternating
// sequence of linear runs and branched blocks: scanning a topological
// order, every fork node (>1 successors) opens a block that closes at its
// immediate post-dominator (the Concat for SPP). The scheduler optimizes
// each block independently, exactly as IOS does.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dcn::graph {

/// One schedulable segment of the graph.
struct Block {
  /// All operator ids in the block (topologically ordered). For a linear
  /// segment this is the chain itself; for a branched block it is the
  /// branch interiors only (entry and exit live in neighboring segments).
  std::vector<OpId> ops;
  /// True if the block contains parallel branches (worth optimizing).
  bool branched = false;
  /// Fork node feeding the block (kInvalidOp for the leading segment).
  OpId entry = kInvalidOp;
  /// Join node consuming the block's branches. kInvalidOp for linear
  /// segments, and for branched blocks whose branches never rejoin (a
  /// multi-output stage subgraph cut mid-fork: each branch runs to its own
  /// kOutput sink).
  OpId exit = kInvalidOp;
};

/// Partition the graph into consecutive blocks covering every op exactly
/// once, in execution order.
std::vector<Block> extract_blocks(const Graph& graph);

/// The parallel branches of a branched block: each inner vector is one
/// chain of ops from (exclusive) entry to (exclusive) exit.
std::vector<std::vector<OpId>> block_branches(const Graph& graph,
                                              const Block& block);

}  // namespace dcn::graph
