#include "serve/health.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerPolicy policy) : policy_(policy) {
  if (policy.failure_threshold < 1) {
    throw ConfigError("CircuitBreaker: failure_threshold must be >= 1, got " +
                      std::to_string(policy.failure_threshold));
  }
  if (policy.open_seconds < 0.0) {
    throw ConfigError("CircuitBreaker: open_seconds must be >= 0, got " +
                      std::to_string(policy.open_seconds));
  }
  if (policy.half_open_successes < 1) {
    throw ConfigError(
        "CircuitBreaker: half_open_successes must be >= 1, got " +
        std::to_string(policy.half_open_successes));
  }
}

BreakerState CircuitBreaker::state(double now) const {
  if (stored_ == BreakerState::kClosed) return BreakerState::kClosed;
  // Half-open is derived, not stored: an open breaker past its cool-down
  // admits trial traffic without needing a timer event.
  return now >= opened_at_ + policy_.open_seconds ? BreakerState::kHalfOpen
                                                  : BreakerState::kOpen;
}

double CircuitBreaker::allows_at(double now) const {
  if (allows(now)) return now;
  return opened_at_ + policy_.open_seconds;
}

void CircuitBreaker::record_success(double now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= policy_.half_open_successes) {
        stored_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A success while nominally open (e.g. a hedge completing on a
      // replica whose breaker tripped mid-flight) does not close it.
      break;
  }
}

void CircuitBreaker::record_failure(double now) {
  switch (state(now)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        stored_ = BreakerState::kOpen;
        opened_at_ = now;
        half_open_successes_ = 0;
        ++opens_;
      }
      break;
    case BreakerState::kHalfOpen:
      // The trial request failed: re-open and restart the cool-down.
      stored_ = BreakerState::kOpen;
      opened_at_ = now;
      half_open_successes_ = 0;
      ++opens_;
      break;
    case BreakerState::kOpen:
      break;
  }
}

const char* replica_state_name(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kSuspect:
      return "suspect";
    case ReplicaState::kDead:
      return "dead";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(int replicas, HealthPolicy policy)
    : policy_(policy) {
  if (replicas < 1) {
    throw ConfigError("HealthMonitor: replicas must be >= 1, got " +
                      std::to_string(replicas));
  }
  if (policy.ewma_alpha <= 0.0 || policy.ewma_alpha > 1.0) {
    throw ConfigError("HealthMonitor: ewma_alpha must be in (0, 1], got " +
                      std::to_string(policy.ewma_alpha));
  }
  if (policy.suspect_factor < 1.0) {
    throw ConfigError("HealthMonitor: suspect_factor must be >= 1, got " +
                      std::to_string(policy.suspect_factor));
  }
  if (policy.min_samples < 1) {
    throw ConfigError("HealthMonitor: min_samples must be >= 1, got " +
                      std::to_string(policy.min_samples));
  }
  if (policy.probe_interval <= 0.0) {
    throw ConfigError("HealthMonitor: probe_interval must be > 0, got " +
                      std::to_string(policy.probe_interval));
  }
  if (policy.max_restarts < 0) {
    throw ConfigError("HealthMonitor: max_restarts must be >= 0, got " +
                      std::to_string(policy.max_restarts));
  }
  if (policy.failure_detection < 0.0) {
    throw ConfigError("HealthMonitor: failure_detection must be >= 0, got " +
                      std::to_string(policy.failure_detection));
  }
  entries_.reserve(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    entries_.emplace_back(
        policy_, mix_seed(policy_.respawn_seed, static_cast<std::uint64_t>(r)));
  }
}

HealthMonitor::Entry& HealthMonitor::entry(int replica) {
  DCN_CHECK(replica >= 0 &&
            replica < static_cast<int>(entries_.size()))
      << "replica " << replica << " out of range";
  return entries_[static_cast<std::size_t>(replica)];
}

const HealthMonitor::Entry& HealthMonitor::entry(int replica) const {
  DCN_CHECK(replica >= 0 &&
            replica < static_cast<int>(entries_.size()))
      << "replica " << replica << " out of range";
  return entries_[static_cast<std::size_t>(replica)];
}

ReplicaState HealthMonitor::state(int replica) const {
  return entry(replica).state;
}

int HealthMonitor::healthy_count() const {
  return static_cast<int>(std::count_if(
      entries_.begin(), entries_.end(), [](const Entry& e) {
        return e.state == ReplicaState::kHealthy;
      }));
}

int HealthMonitor::suspect_count() const {
  return static_cast<int>(std::count_if(
      entries_.begin(), entries_.end(), [](const Entry& e) {
        return e.state == ReplicaState::kSuspect;
      }));
}

int HealthMonitor::dead_count() const {
  return static_cast<int>(std::count_if(
      entries_.begin(), entries_.end(),
      [](const Entry& e) { return e.state == ReplicaState::kDead; }));
}

CircuitBreaker& HealthMonitor::breaker(int replica) {
  return entry(replica).breaker;
}

const CircuitBreaker& HealthMonitor::breaker(int replica) const {
  return entry(replica).breaker;
}

double HealthMonitor::latency_ewma(int replica) const {
  return entry(replica).ewma;
}

void HealthMonitor::transition(int replica, double now, ReplicaState to,
                               const std::string& reason) {
  Entry& e = entry(replica);
  if (e.state == to) return;
  HealthTransition t;
  t.time = now;
  t.replica = replica;
  t.from = e.state;
  t.to = to;
  t.reason = reason;
  transitions_.push_back(std::move(t));
  e.state = to;
}

void HealthMonitor::reevaluate_suspicion(int replica, double now) {
  Entry& e = entry(replica);
  if (e.state == ReplicaState::kDead) return;
  if (e.samples < policy_.min_samples) return;
  // Fleet baseline: the fastest sufficiently-sampled live replica. With
  // fewer than two sampled replicas there is nothing to compare against.
  double min_ewma = std::numeric_limits<double>::infinity();
  int sampled = 0;
  for (const Entry& other : entries_) {
    if (other.state == ReplicaState::kDead) continue;
    if (other.samples < policy_.min_samples) continue;
    ++sampled;
    min_ewma = std::min(min_ewma, other.ewma);
  }
  if (sampled < 2 || min_ewma <= 0.0) return;
  const bool slow = e.ewma > policy_.suspect_factor * min_ewma;
  if (slow && e.state == ReplicaState::kHealthy) {
    transition(replica, now, ReplicaState::kSuspect,
               "latency ewma exceeds fleet baseline");
  } else if (!slow && e.state == ReplicaState::kSuspect) {
    transition(replica, now, ReplicaState::kHealthy,
               "latency ewma recovered to fleet baseline");
  }
}

void HealthMonitor::observe_success(int replica, double now,
                                    double service_seconds) {
  Entry& e = entry(replica);
  e.ewma = e.samples == 0 ? service_seconds
                          : policy_.ewma_alpha * service_seconds +
                                (1.0 - policy_.ewma_alpha) * e.ewma;
  ++e.samples;
  e.breaker.record_success(now);
  reevaluate_suspicion(replica, now);
}

void HealthMonitor::observe_failure(int replica, double now) {
  entry(replica).breaker.record_failure(now);
}

void HealthMonitor::mark_dead(int replica, double now,
                              const std::string& reason) {
  transition(replica, now, ReplicaState::kDead, reason);
}

bool HealthMonitor::can_respawn(int replica) const {
  return entry(replica).restarts_used < policy_.max_restarts;
}

double HealthMonitor::next_respawn_delay(int replica) {
  Entry& e = entry(replica);
  DCN_CHECK(e.restarts_used < policy_.max_restarts)
      << "respawn budget spent for replica " << replica;
  ++e.restarts_used;
  return e.respawn.delay(e.restarts_used);
}

int HealthMonitor::restarts_used(int replica) const {
  return entry(replica).restarts_used;
}

void HealthMonitor::mark_respawned(int replica, double now) {
  Entry& e = entry(replica);
  // A respawned replica is a fresh process: no latency history, a closed
  // breaker. The restart budget is deliberately NOT reset — it bounds the
  // total respawn work a flapping replica can consume.
  e.ewma = 0.0;
  e.samples = 0;
  e.breaker = CircuitBreaker(policy_.breaker);
  e.last_probe = -1.0e300;
  transition(replica, now, ReplicaState::kHealthy, "respawned");
}

void HealthMonitor::mark_lost(int replica, double now,
                              const std::string& reason) {
  Entry& e = entry(replica);
  if (e.state != ReplicaState::kDead) {
    transition(replica, now, ReplicaState::kDead, reason);
  } else {
    // Already dead: log the terminal give-up as its own event so the
    // timeline shows when the fleet stopped trying.
    HealthTransition t;
    t.time = now;
    t.replica = replica;
    t.from = ReplicaState::kDead;
    t.to = ReplicaState::kDead;
    t.reason = reason;
    transitions_.push_back(std::move(t));
  }
}

bool HealthMonitor::probe_due(int replica, double now) const {
  const Entry& e = entry(replica);
  return e.state == ReplicaState::kSuspect &&
         now - e.last_probe >= policy_.probe_interval;
}

void HealthMonitor::note_probe(int replica, double now) {
  entry(replica).last_probe = now;
}

}  // namespace dcn::serve
