#include "serve/traffic.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::serve {

namespace {

void validate(const TrafficConfig& config) {
  if (config.rate <= 0.0) {
    throw ConfigError("traffic: rate must be > 0, got " +
                      std::to_string(config.rate));
  }
  if (config.duration <= 0.0) {
    throw ConfigError("traffic: duration must be > 0, got " +
                      std::to_string(config.duration));
  }
  if (config.burst_factor < 0.0) {
    throw ConfigError("traffic: burst_factor must be >= 0, got " +
                      std::to_string(config.burst_factor));
  }
  if (config.burst_period <= 0.0) {
    throw ConfigError("traffic: burst_period must be > 0, got " +
                      std::to_string(config.burst_period));
  }
  if (config.burst_duty <= 0.0 || config.burst_duty > 1.0) {
    throw ConfigError("traffic: burst_duty must be in (0, 1], got " +
                      std::to_string(config.burst_duty));
  }
  if (config.diurnal_amplitude < 0.0 || config.diurnal_amplitude >= 1.0) {
    throw ConfigError("traffic: diurnal_amplitude must be in [0, 1), got " +
                      std::to_string(config.diurnal_amplitude));
  }
  if (config.diurnal_period <= 0.0) {
    throw ConfigError("traffic: diurnal_period must be > 0, got " +
                      std::to_string(config.diurnal_period));
  }
  if (config.deadline < 0.0) {
    throw ConfigError("traffic: deadline must be >= 0, got " +
                      std::to_string(config.deadline));
  }
}

}  // namespace

double instantaneous_rate(const TrafficConfig& config, double t) {
  double rate = config.rate;
  if (config.diurnal_amplitude > 0.0) {
    rate *= 1.0 + config.diurnal_amplitude *
                      std::sin(2.0 * M_PI * t / config.diurnal_period);
  }
  if (config.burst_factor > 0.0) {
    const double phase =
        t - config.burst_period * std::floor(t / config.burst_period);
    if (phase < config.burst_duty * config.burst_period) {
      rate *= 1.0 + config.burst_factor;
    }
  }
  return rate;
}

double peak_rate(const TrafficConfig& config) {
  return config.rate * (1.0 + config.diurnal_amplitude) *
         (1.0 + config.burst_factor);
}

std::vector<Request> generate_trace(const TrafficConfig& config) {
  validate(config);
  const double envelope = peak_rate(config);
  Rng rng(config.seed);
  std::vector<Request> trace;
  trace.reserve(static_cast<std::size_t>(config.rate * config.duration) + 16);
  double t = 0.0;
  std::int64_t id = 0;
  while (true) {
    // Candidate inter-arrival from the homogeneous envelope process.
    double u;
    do {
      u = rng.uniform();
    } while (u <= 0.0);
    t += -std::log(u) / envelope;
    if (t >= config.duration) break;
    // Thinning: keep with probability rate(t) / envelope. The acceptance
    // draw happens for every candidate, so the kept set is a pure function
    // of (seed, rate profile).
    if (rng.uniform() >= instantaneous_rate(config, t) / envelope) continue;
    Request request;
    request.id = id++;
    request.arrival = t;
    request.deadline = config.deadline > 0.0
                           ? t + config.deadline
                           : std::numeric_limits<double>::infinity();
    trace.push_back(request);
  }
  return trace;
}

}  // namespace dcn::serve
