#include "serve/backend.hpp"

#include <utility>

#include "core/rng.hpp"

namespace dcn::serve {

WholeModelBackend::WholeModelBackend(const graph::Graph& graph,
                                     ios::Schedule schedule,
                                     const simgpu::DeviceSpec& spec,
                                     const ios::ResilientOptions& resilient,
                                     simgpu::Precision precision,
                                     profiler::Recorder* recorder)
    : precision_(precision) {
  device_ = std::make_unique<simgpu::Device>(spec, recorder);
  session_ = std::make_unique<ios::ResilientSession>(
      graph, std::move(schedule), *device_, resilient, precision);
  session_->initialize();
  // The one-time library load + weight upload happen *before* the trace
  // timeline: serving starts from a warm fleet, as documented. Without
  // this reset the init cost lands at t = 0 and every early request
  // queues behind it — invisible under a streamed trace, but it
  // dominates an offline drain (the scan cascade's regime). Respawns
  // still pay re-initialization mid-timeline, where it belongs.
  device_->reset_clocks();
}

void WholeModelBackend::arm_faults(const simgpu::FaultPlan& base,
                                   std::uint64_t salt) {
  if (base.empty()) return;
  simgpu::FaultPlan plan = base;
  plan.seed = mix_seed(plan.seed, salt);
  device_->set_fault_plan(plan);
}

void WholeModelBackend::reseed_backoff(std::uint64_t backoff_seed,
                                       std::uint64_t salt) {
  session_->reseed_backoff(mix_seed(backoff_seed, salt));
}

BackendOutcome WholeModelBackend::serve_batch(double start,
                                              std::int64_t batch) {
  // Sync the replica's private timeline to the dispatch instant, then run;
  // the host-clock delta is the raw service time, recovery included.
  device_->advance_host(start - device_->host_time());
  const auto result = session_->try_run(batch);
  BackendOutcome out;
  out.ok = result.has_value();
  out.end = device_->host_time();
  out.ready = out.end;  // one device, busy for the whole service
  return out;
}

double WholeModelBackend::restart(double now) {
  // Fresh device (reset clocks synced to the fleet timeline), full
  // re-initialization; the replica rejoins once the library load + weight
  // upload costs are paid.
  device_->reset_clocks();
  device_->advance_host(now);
  device_->set_fault_plan(simgpu::FaultPlan{});
  session_->hard_restart();
  return device_->host_time();
}

}  // namespace dcn::serve
