#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "profiler/counters.hpp"
#include "simgpu/device.hpp"

namespace dcn::serve {

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kCompleted:
      return "completed";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kExpired:
      return "expired";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

struct Server::Replica {
  std::unique_ptr<simgpu::Device> device;
  std::unique_ptr<ios::ResilientSession> session;
  double free_at = 0.0;
};

Server::Server(const graph::Graph& graph, ios::Schedule schedule,
               ServerConfig config, profiler::Recorder* recorder)
    : graph_(graph),
      schedule_(std::move(schedule)),
      config_(std::move(config)),
      recorder_(recorder) {
  if (config_.replicas < 1) {
    throw ConfigError("Server: replicas must be >= 1, got " +
                      std::to_string(config_.replicas));
  }
  if (!config_.replica_precisions.empty() &&
      config_.replica_precisions.size() !=
          static_cast<std::size_t>(config_.replicas)) {
    throw ConfigError(
        "Server: replica_precisions has " +
        std::to_string(config_.replica_precisions.size()) +
        " entries for " + std::to_string(config_.replicas) + " replicas");
  }
  replicas_.reserve(static_cast<std::size_t>(config_.replicas));
  for (int r = 0; r < config_.replicas; ++r) {
    const simgpu::Precision precision =
        config_.replica_precisions.empty()
            ? config_.precision
            : config_.replica_precisions[static_cast<std::size_t>(r)];
    auto replica = std::make_unique<Replica>();
    replica->device =
        std::make_unique<simgpu::Device>(config_.device, recorder_);
    replica->session = std::make_unique<ios::ResilientSession>(
        graph_, schedule_, *replica->device, config_.resilient, precision);
    replica->session->initialize();
    replica->free_at = replica->device->host_time();
    replicas_.push_back(std::move(replica));
  }
}

Server::~Server() = default;

ServingReport Server::serve(const std::vector<Request>& trace) {
  DCN_CHECK(!served_) << "serve() is single-shot; construct a fresh Server";
  served_ = true;

  DynamicBatcher batcher(config_.batch, config_.queue_capacity);
  ServingReport report;
  report.offered = static_cast<std::int64_t>(trace.size());

  const double inf = std::numeric_limits<double>::infinity();
  std::size_t next_arrival = 0;
  int rr = 0;  // round-robin dispatch pointer
  double now = 0.0;
  std::int64_t dispatched_batches = 0;
  std::int64_t served_requests = 0;

  const auto sample_depth = [&](double t) {
    const auto depth = static_cast<std::int64_t>(batcher.queue().size());
    report.max_queue_depth = std::max(report.max_queue_depth, depth);
    if (recorder_ != nullptr) {
      recorder_->record_counter_sample("serve.queue_depth", t, depth);
    }
  };

  while (true) {
    const double t_arrival =
        next_arrival < trace.size() ? trace[next_arrival].arrival : inf;
    Replica& next_replica = *replicas_[static_cast<std::size_t>(rr)];
    const auto flush_at =
        batcher.next_flush_time(std::max(next_replica.free_at, now));
    const double t_cut = flush_at ? *flush_at : inf;
    if (t_arrival == inf && !flush_at) break;

    // Arrivals win ties so a request landing exactly at the cut instant can
    // still join the batch (the cut is re-evaluated immediately after).
    if (t_arrival <= t_cut) {
      now = t_arrival;
      const Request& request = trace[next_arrival++];
      if (!batcher.offer(request)) {
        CompletionRecord record;
        record.id = request.id;
        record.status = RequestStatus::kRejected;
        record.arrival = request.arrival;
        record.completion = now;
        record.deadline = request.deadline;
        log_.push_back(record);
      }
      sample_depth(now);
      continue;
    }

    now = t_cut;
    Batch batch = batcher.flush(now);
    sample_depth(now);

    // Deadline admission, second chance: drop admitted requests whose SLO
    // already expired while queued — serving them would burn replica time on
    // answers the client has abandoned.
    std::vector<Request> live;
    live.reserve(batch.requests.size());
    for (const Request& request : batch.requests) {
      if (request.deadline < now) {
        CompletionRecord record;
        record.id = request.id;
        record.status = RequestStatus::kExpired;
        record.arrival = request.arrival;
        record.batch = batch.index;
        record.completion = now;
        record.deadline = request.deadline;
        log_.push_back(record);
      } else {
        live.push_back(request);
      }
    }
    if (live.empty()) continue;

    const int replica_index = rr;
    Replica& replica = *replicas_[static_cast<std::size_t>(replica_index)];
    rr = (rr + 1) % config_.replicas;
    const auto batch_size = static_cast<std::int64_t>(live.size());

    // Per-batch salts: the fault schedule and the backoff jitter stream
    // become pure functions of the batch index, so batch k behaves
    // identically no matter which replica runs it or what earlier batches
    // suffered (the replica-count-invariance contract).
    if (!config_.faults.empty()) {
      simgpu::FaultPlan plan = config_.faults;
      plan.seed = mix_seed(plan.seed, static_cast<std::uint64_t>(batch.index));
      replica.device->set_fault_plan(plan);
    }
    replica.session->reseed_backoff(
        mix_seed(config_.resilient.backoff_seed,
                 static_cast<std::uint64_t>(batch.index)));

    // Sync the replica's private timeline to the global cut instant, then
    // run; the host-clock delta is the service time, recovery included.
    replica.device->advance_host(now - replica.device->host_time());
    const auto result = replica.session->try_run(batch_size);
    const double end = replica.device->host_time();
    replica.free_at = end;
    ++dispatched_batches;
    served_requests += batch_size;
    if (recorder_ != nullptr) {
      recorder_->record_counter_sample("serve.batch_size", now, batch_size);
    }

    for (const Request& request : live) {
      CompletionRecord record;
      record.id = request.id;
      record.status =
          result ? RequestStatus::kCompleted : RequestStatus::kFailed;
      record.arrival = request.arrival;
      record.batch = batch.index;
      record.batch_size = static_cast<int>(batch_size);
      record.replica = replica_index;
      record.dispatch = now;
      record.service = end - now;
      record.completion = end;
      record.deadline = request.deadline;
      record.deadline_met = result.has_value() && end <= request.deadline;
      log_.push_back(record);
    }
  }

  std::sort(log_.begin(), log_.end(),
            [](const CompletionRecord& a, const CompletionRecord& b) {
              return a.id < b.id;
            });

  for (const CompletionRecord& record : log_) {
    switch (record.status) {
      case RequestStatus::kCompleted:
        ++report.completed;
        report.latency.add(record.completion - record.arrival);
        report.makespan = std::max(report.makespan, record.completion);
        break;
      case RequestStatus::kRejected:
        break;  // counted via the queue below
      case RequestStatus::kExpired:
        ++report.expired;
        break;
      case RequestStatus::kFailed:
        ++report.failed;
        break;
    }
    if (std::isfinite(record.deadline)) {
      ++report.slo_tracked;
      if (record.deadline_met) ++report.slo_met;
    }
  }
  report.admitted = batcher.queue().admitted();
  report.rejected = batcher.queue().rejected();
  report.batches = batcher.batches();
  report.size_flushes = batcher.size_flushes();
  report.timeout_flushes = batcher.timeout_flushes();
  report.mean_batch_size =
      dispatched_batches == 0 ? 0.0
                              : static_cast<double>(served_requests) /
                                    static_cast<double>(dispatched_batches);
  report.p50 = report.latency.quantile(0.50);
  report.p95 = report.latency.quantile(0.95);
  report.p99 = report.latency.quantile(0.99);
  if (report.makespan > 0.0) {
    report.throughput =
        static_cast<double>(report.completed) / report.makespan;
  }
  for (const auto& replica : replicas_) {
    report.transient_retries += replica->session->stats().transient_retries;
    report.reinitializations += replica->session->stats().reinitializations;
  }

  profiler::counter_add("serve.offered", report.offered);
  profiler::counter_add("serve.admitted", report.admitted);
  profiler::counter_add("serve.rejected", report.rejected);
  profiler::counter_add("serve.batches", report.batches);
  profiler::counter_add("serve.slo_miss", report.slo_tracked - report.slo_met);
  return report;
}

std::string ServingReport::to_string() const {
  std::ostringstream os;
  os << "Serving Statistics:\n";
  TextTable requests({"Requests", "Count", "Share"});
  requests.add_row({"offered", std::to_string(offered), "-"});
  requests.add_row({"completed", std::to_string(completed),
                    offered == 0 ? "-"
                                 : format_percent(static_cast<double>(
                                                      completed) /
                                                  static_cast<double>(
                                                      offered))});
  requests.add_row({"rejected", std::to_string(rejected),
                    format_percent(reject_rate())});
  requests.add_row({"expired", std::to_string(expired), "-"});
  requests.add_row({"failed", std::to_string(failed), "-"});
  os << requests.to_string() << '\n';

  TextTable batching({"Batching", "Value"});
  batching.add_row({"batches", std::to_string(batches)});
  batching.add_row({"size-triggered", std::to_string(size_flushes)});
  batching.add_row({"timeout-triggered", std::to_string(timeout_flushes)});
  batching.add_row({"mean batch size", format_double(mean_batch_size, 2)});
  batching.add_row({"max queue depth", std::to_string(max_queue_depth)});
  os << batching.to_string() << '\n';

  TextTable latency_table({"Latency", "Value"});
  latency_table.add_row({"p50", format_ms(p50 * 1e3)});
  latency_table.add_row({"p95", format_ms(p95 * 1e3)});
  latency_table.add_row({"p99", format_ms(p99 * 1e3)});
  latency_table.add_row({"mean", format_ms(latency.mean() * 1e3)});
  latency_table.add_row({"max", format_ms(latency.max() * 1e3)});
  latency_table.add_row(
      {"throughput", format_double(throughput, 1) + " req/s"});
  os << latency_table.to_string();

  if (slo_tracked > 0) {
    os << "\nSLO: " << slo_met << "/" << slo_tracked << " within deadline ("
       << format_percent(slo_attainment()) << ")\n";
  }
  if (transient_retries > 0 || reinitializations > 0) {
    os << "Recovery: " << transient_retries << " transient retrie(s), "
       << reinitializations << " device reinitialization(s)\n";
  }
  return os.str();
}

namespace {

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

}  // namespace

std::string Server::log_to_csv(const std::vector<CompletionRecord>& log) {
  std::ostringstream os;
  os << "id,status,arrival_ns,batch,batch_size,dispatch_ns,service_ns,"
        "completion_ns,latency_ns,deadline_ns,deadline_met\n";
  for (const CompletionRecord& record : log) {
    os << record.id << ',' << request_status_name(record.status) << ','
       << to_ns(record.arrival) << ',' << record.batch << ','
       << record.batch_size << ',' << to_ns(record.dispatch) << ','
       << to_ns(record.service) << ',' << to_ns(record.completion) << ','
       << to_ns(record.completion - record.arrival) << ','
       << (std::isfinite(record.deadline) ? to_ns(record.deadline) : -1)
       << ',' << (record.deadline_met ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace dcn::serve
