#include "serve/server.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "profiler/counters.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::serve {

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kCompleted:
      return "completed";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kDeadlineExpired:
      return "deadline_expired";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

struct Server::Replica {
  /// The dispatchable unit: a whole-model replica or a pipeline group.
  std::unique_ptr<Backend> backend;
  simgpu::Precision precision = simgpu::Precision::kFp32;
  double free_at = 0.0;
  /// Fleet-level chaos plan (replica deaths + straggler windows); the
  /// transient per-dispatch plan is a separate channel (config.faults).
  simgpu::FaultPlan chaos;
  /// kReplicaDeath rules sorted by time; `next_death`/`death_fires` track
  /// the armed rule (-1 fires = re-kills every restart; 0 = spent).
  std::vector<simgpu::FaultRule> death_rules;
  std::size_t next_death_rule = 0;
  double next_death = std::numeric_limits<double>::infinity();
  int death_fires = 0;
  /// Pending restart instant (+inf when none scheduled).
  double respawn_at = std::numeric_limits<double>::infinity();

  /// Arm the earliest death rule strictly after `after` (rules that would
  /// have fired while the replica was already down are skipped).
  void arm_next_death(double after) {
    next_death = std::numeric_limits<double>::infinity();
    death_fires = 0;
    while (next_death_rule < death_rules.size()) {
      const simgpu::FaultRule& rule = death_rules[next_death_rule];
      ++next_death_rule;
      if (rule.after_time > after) {
        next_death = rule.after_time;
        death_fires = rule.max_fires;
        break;
      }
    }
  }
};

Server::Server(const graph::Graph& graph, ios::Schedule schedule,
               ServerConfig config, profiler::Recorder* recorder)
    : Server(graph, std::move(schedule), std::move(config), recorder, {}) {}

Server::Server(const graph::Graph& graph, ios::Schedule schedule,
               ServerConfig config, profiler::Recorder* recorder,
               std::vector<std::unique_ptr<Backend>> extra)
    : graph_(graph),
      schedule_(std::move(schedule)),
      config_(std::move(config)),
      recorder_(recorder) {
  const int fleet_size =
      config_.replicas + static_cast<int>(extra.size());
  if (config_.replicas < 0 || fleet_size < 1) {
    throw ConfigError("Server: fleet must have >= 1 entry, got " +
                      std::to_string(config_.replicas) +
                      " replicas + " + std::to_string(extra.size()) +
                      " extra backends");
  }
  if (!config_.replica_precisions.empty() &&
      config_.replica_precisions.size() !=
          static_cast<std::size_t>(config_.replicas)) {
    throw ConfigError(
        "Server: replica_precisions has " +
        std::to_string(config_.replica_precisions.size()) +
        " entries for " + std::to_string(config_.replicas) + " replicas");
  }
  monitor_ =
      std::make_unique<HealthMonitor>(fleet_size, config_.fleet.health);
  // Chaos victims draw over the whole fleet: a death landing on an extra
  // backend (a pipeline group) takes down that one group, not the fleet.
  std::vector<simgpu::FaultPlan> chaos_plans;
  if (!config_.fleet.chaos.empty()) {
    chaos_plans = materialize_chaos(config_.fleet.chaos, fleet_size);
  }
  replicas_.reserve(static_cast<std::size_t>(fleet_size));
  for (int r = 0; r < fleet_size; ++r) {
    auto replica = std::make_unique<Replica>();
    if (r < config_.replicas) {
      const simgpu::Precision precision =
          config_.replica_precisions.empty()
              ? config_.precision
              : config_.replica_precisions[static_cast<std::size_t>(r)];
      replica->precision = precision;
      replica->backend = std::make_unique<WholeModelBackend>(
          graph_, schedule_, config_.device, config_.resilient, precision,
          recorder_);
    } else {
      replica->backend =
          std::move(extra[static_cast<std::size_t>(r - config_.replicas)]);
      DCN_CHECK(replica->backend != nullptr) << "null extra backend";
      replica->precision = replica->backend->precision();
    }
    replica->free_at = 0.0;
    if (!chaos_plans.empty()) {
      replica->chaos = chaos_plans[static_cast<std::size_t>(r)];
      for (const simgpu::FaultRule& rule : replica->chaos.rules) {
        if (rule.kind == simgpu::FaultKind::kReplicaDeath &&
            rule.after_time >= 0.0) {
          replica->death_rules.push_back(rule);
        }
      }
      std::sort(replica->death_rules.begin(), replica->death_rules.end(),
                [](const simgpu::FaultRule& a, const simgpu::FaultRule& b) {
                  return a.after_time < b.after_time;
                });
      replica->arm_next_death(-std::numeric_limits<double>::infinity());
    }
    replicas_.push_back(std::move(replica));
  }
}

Server::~Server() = default;

const std::vector<HealthTransition>& Server::health_transitions() const {
  return monitor_->transitions();
}

ServingReport Server::serve(const std::vector<Request>& trace) {
  DCN_CHECK(!served_) << "serve() is single-shot; construct a fresh Server";
  served_ = true;

  DynamicBatcher batcher(config_.batch, config_.queue_capacity);
  HedgeController hedges(config_.fleet.hedge);
  LoadShedder shedder(config_.fleet.shed);
  HealthMonitor& monitor = *monitor_;
  const HealthPolicy& health = config_.fleet.health;

  const int fleet_size = static_cast<int>(replicas_.size());

  ServingReport report;
  report.pool = config_.pool;
  report.replicas = fleet_size;
  for (const auto& replica : replicas_) {
    report.devices += replica->backend->device_count();
  }
  report.offered = static_cast<std::int64_t>(trace.size());

  // Per-pool counter namespace: an empty pool keeps the classic "serve.*"
  // names, so single-model deployments are unchanged byte-for-byte.
  const std::string prefix =
      config_.pool.empty() ? "serve." : "serve." + config_.pool + '.';

  const double inf = std::numeric_limits<double>::infinity();
  std::size_t next_arrival = 0;
  double now = 0.0;
  std::int64_t dispatched_batches = 0;
  std::int64_t served_requests = 0;

  /// A batch whose replica died mid-service, awaiting re-dispatch to a
  /// survivor once the failure-detection delay elapses.
  struct PendingBatch {
    std::vector<Request> requests;
    std::int64_t batch_index = 0;
    int attempt = 2;
    double ready_at = 0.0;
  };
  std::deque<PendingBatch> redispatch;

  const auto record_instant = [&](const std::string& name, double time,
                                  const std::string& detail) {
    if (recorder_ != nullptr) recorder_->record_instant(name, time, detail);
  };

  // Mirror the monitor's transition log into the profiler as instant events
  // plus fleet-population counter tracks, as each transition lands.
  std::size_t seen_transitions = 0;
  const auto drain_transitions = [&] {
    for (; seen_transitions < monitor.transitions().size();
         ++seen_transitions) {
      const HealthTransition& t = monitor.transitions()[seen_transitions];
      if (recorder_ == nullptr) continue;
      recorder_->record_instant(
          std::string("replica.") + replica_state_name(t.to), t.time,
          "replica " + std::to_string(t.replica) + ": " +
              replica_state_name(t.from) + " -> " +
              replica_state_name(t.to) + " (" + t.reason + ")");
      recorder_->record_counter_sample("fleet.healthy_replicas", t.time,
                                       monitor.healthy_count());
      recorder_->record_counter_sample("fleet.dead_replicas", t.time,
                                       monitor.dead_count());
    }
  };

  const auto sample_depth = [&](double t) {
    const auto depth = static_cast<std::int64_t>(batcher.queue().size());
    report.max_queue_depth = std::max(report.max_queue_depth, depth);
    if (recorder_ != nullptr) {
      recorder_->record_counter_sample(prefix + "queue_depth", t, depth);
    }
  };

  // Replicas busy (free_at in the future) at instant `t` — the occupancy
  // track that makes cascade stage imbalance visible next to queue depth.
  const auto sample_busy = [&](double t) {
    if (recorder_ == nullptr) return;
    std::int64_t busy = 0;
    for (const auto& replica : replicas_) {
      if (replica->free_at > t) ++busy;
    }
    recorder_->record_counter_sample(prefix + "busy_replicas", t, busy);
  };

  const auto update_shedder = [&](double t) {
    const double occupancy = static_cast<double>(batcher.queue().size()) /
                             static_cast<double>(config_.queue_capacity);
    if (shedder.update(t, occupancy)) {
      record_instant(
          shedder.degraded() ? "shed.degrade" : "shed.restore", t,
          "queue occupancy " + format_double(occupancy, 2));
      if (recorder_ != nullptr) {
        recorder_->record_counter_sample(prefix + "shed_degraded", t,
                                         shedder.degraded() ? 1 : 0);
      }
    }
  };

  // Kill a replica at virtual time `t`: burn one crash fire, mark it dead,
  // and schedule a restart under the bounded respawn budget.
  const auto kill_replica = [&](int r, double t, const std::string& why) {
    Replica& rep = *replicas_[static_cast<std::size_t>(r)];
    if (rep.death_fires > 0) --rep.death_fires;
    ++report.deaths;
    rep.free_at = t;
    monitor.mark_dead(r, t, why);
    if (monitor.can_respawn(r)) {
      const double delay = monitor.next_respawn_delay(r);
      rep.respawn_at = t + health.failure_detection + delay;
    } else {
      rep.respawn_at = inf;
      monitor.mark_lost(r, t, "respawn budget spent");
    }
    drain_transitions();
  };

  // Health-weighted least-outstanding replica selection at instant `t`:
  // free, alive, breaker permitting, no crash already due. Preference
  // order: shed-aware precision pool, then non-suspect (probe-due suspects
  // rank as healthy so their EWMA gets fresh samples to decay on), then
  // least-recently-busy (LRU rotation keeps every healthy replica sampled —
  // ordering by EWMA first would starve a replica after one unlucky slow
  // service and blind the straggler detector), then lowest latency EWMA,
  // then lowest index — a total, deterministic order.
  const auto pick_replica = [&](double t, int exclude) -> int {
    int best = -1;
    std::array<double, 4> best_key{};
    for (int r = 0; r < fleet_size; ++r) {
      if (r == exclude) continue;
      const Replica& rep = *replicas_[static_cast<std::size_t>(r)];
      if (!monitor.alive(r)) continue;
      if (rep.free_at > t) continue;
      if (!monitor.breaker(r).allows(t)) continue;
      if (rep.death_fires != 0 && rep.next_death <= t) continue;
      double pool = 0.0;
      if (config_.fleet.shed.enabled) {
        const bool degraded_pool = rep.precision != config_.precision;
        pool = shedder.degraded() == degraded_pool ? 0.0 : 1.0;
      }
      const bool penalized = monitor.state(r) == ReplicaState::kSuspect &&
                             !monitor.probe_due(r, t);
      const std::array<double, 4> key = {pool, penalized ? 1.0 : 0.0,
                                         rep.free_at,
                                         monitor.latency_ewma(r)};
      if (best < 0 || key < best_key) {
        best = r;
        best_key = key;
      }
    }
    return best;
  };

  struct ServiceOutcome {
    bool ok = false;
    bool crashed = false;
    double crash_time = 0.0;
    double end = 0.0;
    /// When the backend can take its next dispatch (== end for whole-model
    /// replicas; stage-0 drain for pipeline groups).
    double ready = 0.0;
  };

  // Run one dispatch synchronously on the virtual clock. The whole outcome
  // — transient-fault recovery, straggler slowdown, mid-service crash — is
  // resolved here at dispatch time, which is what lets the event loop stay
  // a simple five-way minimum.
  const auto run_on_replica = [&](int r, double start,
                                  std::int64_t batch_index, int attempt,
                                  std::uint64_t channel,
                                  std::int64_t batch_size) -> ServiceOutcome {
    Replica& rep = *replicas_[static_cast<std::size_t>(r)];
    // Dispatch salt: first-attempt primaries keep the batch-index salt
    // (the replica-count-invariance contract pins it); re-dispatches and
    // hedges mix in the attempt number and a channel so their fault and
    // jitter streams are independent of the primary's.
    const std::uint64_t salt =
        (attempt == 1 && channel == 0)
            ? static_cast<std::uint64_t>(batch_index)
            : mix_seed(mix_seed(static_cast<std::uint64_t>(batch_index),
                                static_cast<std::uint64_t>(attempt)),
                       channel);
    rep.backend->arm_faults(config_.faults, salt);
    rep.backend->reseed_backoff(config_.resilient.backoff_seed, salt);
    const BackendOutcome raw = rep.backend->serve_batch(start, batch_size);
    // Straggler windows scale the whole service (retries included); the
    // factor is sampled at dispatch so the outcome resolves synchronously.
    // The factor == 1 case must return raw.end exactly: rounding
    // start + (raw.end - start) can land one ULP below the backend's
    // device clock, and the next dispatch at free_at would then ask the
    // device for a negative sleep.
    const double factor = rep.chaos.straggler_factor(start);
    ServiceOutcome out;
    out.end = factor == 1.0 ? raw.end : start + (raw.end - start) * factor;
    out.ready =
        factor == 1.0 ? raw.ready : start + (raw.ready - start) * factor;
    out.ok = raw.ok;
    // A crash landing inside the service window overrides the result: the
    // replica dies mid-flight and the batch is lost with it.
    if (rep.death_fires != 0 && rep.next_death > start &&
        rep.next_death < out.end) {
      out.crashed = true;
      out.crash_time = rep.next_death;
      out.ok = false;
    }
    return out;
  };

  // Dispatch `requests` as one batch at `start`: run the primary, race a
  // hedge when warranted, push crash victims onto the re-dispatch queue,
  // and write one CompletionRecord per request for every settled outcome.
  const auto dispatch_batch = [&](std::vector<Request> requests,
                                  std::int64_t batch_index, int attempt,
                                  double start) {
    const int primary = pick_replica(start, -1);
    DCN_CHECK(primary >= 0) << "dispatch with no eligible replica";
    if (monitor.state(primary) == ReplicaState::kSuspect) {
      monitor.note_probe(primary, start);
    }
    const auto batch_size = static_cast<std::int64_t>(requests.size());
    const ServiceOutcome primary_out =
        run_on_replica(primary, start, batch_index, attempt, 0, batch_size);
    ++dispatched_batches;
    served_requests += batch_size;
    const double primary_busy =
        (primary_out.crashed ? primary_out.crash_time : primary_out.end) -
        start;
    report.busy_seconds += primary_busy;
    // Device cost charges the reservation window (start -> ready for the
    // next dispatch) per owned device: a whole-model replica is reserved
    // for the full service, a pipeline group only until its first stage
    // frees (the drain overlaps the next batch's fill).
    const double primary_reserved =
        (primary_out.crashed ? primary_out.crash_time : primary_out.ready) -
        start;
    report.device_seconds +=
        primary_reserved *
        replicas_[static_cast<std::size_t>(primary)]->backend->device_count();
    if (recorder_ != nullptr) {
      recorder_->record_counter_sample(prefix + "batch_size", start,
                                       batch_size);
      sample_busy(start);
    }

    if (primary_out.crashed) {
      kill_replica(primary, primary_out.crash_time,
                   "crash during service of batch " +
                       std::to_string(batch_index));
      ++report.crash_redispatches;
      PendingBatch pending;
      pending.requests = std::move(requests);
      pending.batch_index = batch_index;
      pending.attempt = attempt + 1;
      pending.ready_at = primary_out.crash_time + health.failure_detection;
      redispatch.push_back(std::move(pending));
      return;
    }
    replicas_[static_cast<std::size_t>(primary)]->free_at = primary_out.ready;

    // Hedge decision uses the delay derived from *prior* observations only
    // (mid-flight, the server knows elapsed time, not the final service).
    const auto hedge_delay = hedges.delay();
    const double primary_service = primary_out.end - start;
    if (primary_out.ok) {
      monitor.observe_success(primary, primary_out.end, primary_service);
      hedges.observe(primary_service);
    } else {
      const int opens_before = monitor.breaker(primary).opens();
      monitor.observe_failure(primary, primary_out.end);
      if (monitor.breaker(primary).opens() > opens_before) {
        record_instant("breaker.open", primary_out.end,
                       "replica " + std::to_string(primary) +
                           " breaker opened");
      }
    }
    drain_transitions();

    int winner = primary;
    double winner_end = primary_out.end;
    bool winner_ok = primary_out.ok;
    bool hedged = false;
    if (hedge_delay.has_value() && primary_service > *hedge_delay) {
      const double hedge_start = start + *hedge_delay;
      const int mate = pick_replica(hedge_start, primary);
      if (mate >= 0) {
        hedged = true;
        ++report.hedges_launched;
        record_instant("hedge.launch", hedge_start,
                       "batch " + std::to_string(batch_index) +
                           " hedged on replica " + std::to_string(mate));
        const ServiceOutcome hedge_out = run_on_replica(
            mate, hedge_start, batch_index, attempt, 1, batch_size);
        const double hedge_busy =
            (hedge_out.crashed ? hedge_out.crash_time : hedge_out.end) -
            hedge_start;
        report.busy_seconds += hedge_busy;
        const double hedge_reserved =
            (hedge_out.crashed ? hedge_out.crash_time : hedge_out.ready) -
            hedge_start;
        report.device_seconds +=
            hedge_reserved *
            replicas_[static_cast<std::size_t>(mate)]->backend->device_count();
        if (hedge_out.crashed) {
          // The hedge replica died mid-race; the primary outcome stands,
          // so nothing is re-dispatched.
          kill_replica(mate, hedge_out.crash_time,
                       "crash during hedge of batch " +
                           std::to_string(batch_index));
        } else {
          replicas_[static_cast<std::size_t>(mate)]->free_at = hedge_out.ready;
          if (hedge_out.ok) {
            monitor.observe_success(mate, hedge_out.end,
                                    hedge_out.end - hedge_start);
            hedges.observe(hedge_out.end - hedge_start);
            if (!winner_ok || hedge_out.end < winner_end) {
              // First completion wins; a completed primary's duplicate
              // result is suppressed deterministically.
              if (winner_ok) ++report.duplicates_suppressed;
              winner = mate;
              winner_end = hedge_out.end;
              winner_ok = true;
              ++report.hedges_won;
              record_instant("hedge.win", hedge_out.end,
                             "batch " + std::to_string(batch_index) +
                                 " won by hedge on replica " +
                                 std::to_string(mate));
            } else {
              ++report.duplicates_suppressed;
            }
          } else {
            monitor.observe_failure(mate, hedge_out.end);
          }
          drain_transitions();
        }
      }
    }

    for (const Request& request : requests) {
      CompletionRecord record;
      record.id = request.id;
      record.status =
          winner_ok ? RequestStatus::kCompleted : RequestStatus::kFailed;
      record.arrival = request.arrival;
      record.batch = batch_index;
      record.batch_size = static_cast<int>(batch_size);
      record.replica = winner;
      record.dispatch = start;
      record.service = winner_end - start;
      record.completion = winner_end;
      record.deadline = request.deadline;
      record.deadline_met = winner_ok && winner_end <= request.deadline;
      record.precision =
          replicas_[static_cast<std::size_t>(winner)]->precision;
      record.hedged = hedged;
      record.dispatch_attempts = attempt;
      log_.push_back(record);
    }
  };

  while (true) {
    const double t_arrival =
        next_arrival < trace.size() ? trace[next_arrival].arrival : inf;

    // Scan the fleet: pending idle-replica deaths (in-flight crashes are
    // resolved at dispatch), pending respawns, and the earliest instant any
    // eligible replica can take a batch.
    double t_death = inf;
    int death_replica = -1;
    double t_respawn = inf;
    int respawn_replica = -1;
    double fleet_free = inf;
    bool any_alive = false;
    bool any_respawn = false;
    for (int r = 0; r < fleet_size; ++r) {
      const Replica& rep = *replicas_[static_cast<std::size_t>(r)];
      if (monitor.alive(r)) {
        any_alive = true;
        if (rep.death_fires != 0 && rep.next_death < inf) {
          const double t = std::max(rep.next_death, now);
          if (t < t_death) {
            t_death = t;
            death_replica = r;
          }
        }
        const double at = std::max(now, rep.free_at);
        fleet_free = std::min(fleet_free, monitor.breaker(r).allows_at(at));
      } else if (rep.respawn_at < inf) {
        any_respawn = true;
        if (rep.respawn_at < t_respawn) {
          t_respawn = rep.respawn_at;
          respawn_replica = r;
        }
      }
    }

    // Fleet extinct with no arrivals left: every admitted-but-unserved
    // request is lost. (While arrivals continue they keep flowing into the
    // bounded queue so rejection accounting stays truthful.)
    if (!any_alive && !any_respawn && t_arrival == inf) {
      const auto fail_request = [&](const Request& request,
                                    std::int64_t batch_index) {
        CompletionRecord record;
        record.id = request.id;
        record.status = RequestStatus::kFailed;
        record.arrival = request.arrival;
        record.batch = batch_index;
        record.completion = now;
        record.deadline = request.deadline;
        log_.push_back(record);
      };
      for (const PendingBatch& pending : redispatch) {
        for (const Request& request : pending.requests) {
          fail_request(request, pending.batch_index);
        }
      }
      redispatch.clear();
      for (const Request& request : batcher.drain()) {
        fail_request(request, -1);
      }
      break;
    }

    const auto flush_at = fleet_free < inf
                              ? batcher.next_flush_time(
                                    std::max(fleet_free, now))
                              : std::nullopt;
    const double t_cut = flush_at ? *flush_at : inf;

    double t_redispatch = inf;
    std::size_t redispatch_pick = 0;
    if (fleet_free < inf) {
      for (std::size_t i = 0; i < redispatch.size(); ++i) {
        const double t = std::max(redispatch[i].ready_at, fleet_free);
        if (t < t_redispatch) {
          t_redispatch = t;
          redispatch_pick = i;
        }
      }
    }

    // Once the trace is drained and nothing is queued or awaiting
    // re-dispatch, the run is over — deaths scheduled after the last
    // completion never affect a request, so they are not simulated.
    if (t_arrival == inf && batcher.queue().empty() && redispatch.empty()) {
      break;
    }

    now = std::min({t_death, t_respawn, t_arrival, t_redispatch, t_cut});

    // Deaths and respawns resolve before any same-instant dispatch so
    // eligibility is never stale; arrivals win the remaining ties so a
    // request landing exactly at the cut instant can still join the batch.
    if (t_death == now) {
      kill_replica(death_replica, now, "scheduled crash");
      continue;
    }
    if (t_respawn == now) {
      Replica& rep = *replicas_[static_cast<std::size_t>(respawn_replica)];
      rep.respawn_at = inf;
      ++report.respawn_attempts;
      if (rep.death_fires != 0) {
        // Permanent fault: the crash re-fires on the restart attempt.
        if (rep.death_fires > 0) --rep.death_fires;
        ++report.deaths;
        record_instant("replica.respawn_failed", now,
                       "replica " + std::to_string(respawn_replica) +
                           " crashed again on restart");
        if (monitor.can_respawn(respawn_replica)) {
          rep.respawn_at = now + monitor.next_respawn_delay(respawn_replica);
        } else {
          monitor.mark_lost(respawn_replica, now, "respawn budget spent");
          drain_transitions();
        }
      } else {
        // Restart succeeds: the backend hard-resets every owned device and
        // re-initializes; it rejoins once the restart cost is paid.
        rep.free_at = rep.backend->restart(now);
        rep.arm_next_death(now);
        monitor.mark_respawned(respawn_replica, now);
        ++report.respawns;
        drain_transitions();
        record_instant("replica.respawn", now,
                       "replica " + std::to_string(respawn_replica) +
                           " back after " +
                           std::to_string(monitor.restarts_used(
                               respawn_replica)) +
                           " restart(s)");
      }
      continue;
    }
    if (t_arrival == now) {
      const Request& request = trace[next_arrival++];
      if (!batcher.offer(request)) {
        CompletionRecord record;
        record.id = request.id;
        record.status = RequestStatus::kRejected;
        record.arrival = request.arrival;
        record.completion = now;
        record.deadline = request.deadline;
        log_.push_back(record);
      }
      sample_depth(now);
      update_shedder(now);
      continue;
    }
    if (t_redispatch == now) {
      PendingBatch pending = std::move(redispatch[redispatch_pick]);
      redispatch.erase(redispatch.begin() +
                       static_cast<std::ptrdiff_t>(redispatch_pick));
      // Deadlines are re-checked here: the crash plus the detection delay
      // may have burned a request's whole budget.
      std::vector<Request> live;
      live.reserve(pending.requests.size());
      for (const Request& request : pending.requests) {
        if (request.deadline < now) {
          CompletionRecord record;
          record.id = request.id;
          record.status = RequestStatus::kDeadlineExpired;
          record.arrival = request.arrival;
          record.batch = pending.batch_index;
          record.completion = now;
          record.deadline = request.deadline;
          log_.push_back(record);
        } else {
          live.push_back(request);
        }
      }
      if (!live.empty()) {
        dispatch_batch(std::move(live), pending.batch_index, pending.attempt,
                       now);
      }
      continue;
    }

    // Cut a batch. Requests whose deadline already passed were diverted at
    // formation (DynamicBatcher::flush) and only need their records.
    Batch batch = batcher.flush(now);
    sample_depth(now);
    update_shedder(now);
    for (const Request& request : batch.expired) {
      CompletionRecord record;
      record.id = request.id;
      record.status = RequestStatus::kDeadlineExpired;
      record.arrival = request.arrival;
      record.batch = batch.index;
      record.completion = now;
      record.deadline = request.deadline;
      log_.push_back(record);
    }
    if (batch.requests.empty()) continue;
    dispatch_batch(std::move(batch.requests), batch.index, 1, now);
  }

  std::sort(log_.begin(), log_.end(),
            [](const CompletionRecord& a, const CompletionRecord& b) {
              return a.id < b.id;
            });

  for (const CompletionRecord& record : log_) {
    switch (record.status) {
      case RequestStatus::kCompleted:
        ++report.completed;
        report.latency.add(record.completion - record.arrival);
        report.makespan = std::max(report.makespan, record.completion);
        if (record.precision != config_.precision) ++report.degraded_served;
        break;
      case RequestStatus::kRejected:
        break;  // counted via the queue below
      case RequestStatus::kDeadlineExpired:
        ++report.deadline_expired;
        break;
      case RequestStatus::kFailed:
        ++report.failed;
        break;
    }
    if (std::isfinite(record.deadline)) {
      ++report.slo_tracked;
      if (record.deadline_met) ++report.slo_met;
    }
  }
  report.admitted = batcher.queue().admitted();
  report.rejected = batcher.queue().rejected();
  report.batches = batcher.batches();
  report.size_flushes = batcher.size_flushes();
  report.timeout_flushes = batcher.timeout_flushes();
  report.mean_batch_size =
      dispatched_batches == 0 ? 0.0
                              : static_cast<double>(served_requests) /
                                    static_cast<double>(dispatched_batches);
  report.p50 = report.latency.quantile(0.50);
  report.p95 = report.latency.quantile(0.95);
  report.p99 = report.latency.quantile(0.99);
  if (report.makespan > 0.0) {
    report.throughput =
        static_cast<double>(report.completed) / report.makespan;
  }
  for (const auto& replica : replicas_) {
    const ios::SessionStats stats = replica->backend->stats();
    report.transient_retries += stats.transient_retries;
    report.reinitializations += stats.reinitializations;
  }
  report.replicas_lost = monitor.dead_count();
  report.shed_degrade_entries = shedder.degrade_entries();
  report.degraded_seconds = shedder.degraded_seconds(now);
  if (!monitor.transitions().empty()) {
    report.time_to_recovery = monitor.transitions().back().time -
                              monitor.transitions().front().time;
  }

  profiler::counter_add(prefix + "offered", report.offered);
  profiler::counter_add(prefix + "admitted", report.admitted);
  profiler::counter_add(prefix + "rejected", report.rejected);
  profiler::counter_add(prefix + "completed", report.completed);
  profiler::counter_add(prefix + "batches", report.batches);
  profiler::counter_add(prefix + "slo_miss",
                        report.slo_tracked - report.slo_met);
  profiler::counter_add(prefix + "deaths", report.deaths);
  profiler::counter_add(prefix + "respawns", report.respawns);
  profiler::counter_add(prefix + "hedges", report.hedges_launched);
  profiler::counter_add(prefix + "degraded_served", report.degraded_served);
  // Integer permille so the render_report counter table can carry the
  // pool's utilization next to its throughput counters.
  profiler::counter_add(prefix + "occupancy_permille",
                        static_cast<std::int64_t>(
                            std::llround(report.occupancy() * 1000.0)));
  return report;
}

std::string ServingReport::to_string() const {
  std::ostringstream os;
  os << "Serving Statistics" << (pool.empty() ? "" : " [pool " + pool + "]")
     << ":\n";
  TextTable requests({"Requests", "Count", "Share"});
  requests.add_row({"offered", std::to_string(offered), "-"});
  requests.add_row({"completed", std::to_string(completed),
                    offered == 0 ? "-"
                                 : format_percent(static_cast<double>(
                                                      completed) /
                                                  static_cast<double>(
                                                      offered))});
  requests.add_row({"rejected", std::to_string(rejected),
                    format_percent(reject_rate())});
  requests.add_row(
      {"deadline-expired", std::to_string(deadline_expired), "-"});
  requests.add_row({"failed", std::to_string(failed), "-"});
  os << requests.to_string() << '\n';

  TextTable batching({"Batching", "Value"});
  batching.add_row({"batches", std::to_string(batches)});
  batching.add_row({"size-triggered", std::to_string(size_flushes)});
  batching.add_row({"timeout-triggered", std::to_string(timeout_flushes)});
  batching.add_row({"mean batch size", format_double(mean_batch_size, 2)});
  batching.add_row({"max queue depth", std::to_string(max_queue_depth)});
  os << batching.to_string() << '\n';

  TextTable latency_table({"Latency", "Value"});
  latency_table.add_row({"p50", format_ms(p50 * 1e3)});
  latency_table.add_row({"p95", format_ms(p95 * 1e3)});
  latency_table.add_row({"p99", format_ms(p99 * 1e3)});
  latency_table.add_row({"mean", format_ms(latency.mean() * 1e3)});
  latency_table.add_row({"max", format_ms(latency.max() * 1e3)});
  latency_table.add_row(
      {"throughput", format_double(throughput, 1) + " req/s"});
  latency_table.add_row({"goodput", format_double(goodput(), 1) + " req/s"});
  latency_table.add_row({"occupancy", format_percent(occupancy()) + " of " +
                                          std::to_string(replicas) +
                                          " replica(s)"});
  latency_table.add_row({"devices", std::to_string(devices)});
  latency_table.add_row({"device-seconds", format_double(device_seconds, 3)});
  latency_table.add_row({"cost per request",
                         format_double(cost_per_request() * 1e3, 4) +
                             " device-ms"});
  os << latency_table.to_string();

  if (slo_tracked > 0) {
    os << "\nSLO: " << slo_met << "/" << slo_tracked << " within deadline ("
       << format_percent(slo_attainment()) << ")\n";
  }
  if (transient_retries > 0 || reinitializations > 0) {
    os << "Recovery: " << transient_retries << " transient retrie(s), "
       << reinitializations << " device reinitialization(s)\n";
  }
  if (deaths > 0 || hedges_launched > 0 || shed_degrade_entries > 0) {
    os << "\nFleet Self-Healing:\n";
    TextTable fleet({"Fleet", "Value"});
    fleet.add_row({"replica deaths", std::to_string(deaths)});
    fleet.add_row({"respawns", std::to_string(respawns) + "/" +
                                   std::to_string(respawn_attempts) +
                                   " attempt(s)"});
    fleet.add_row({"replicas lost", std::to_string(replicas_lost)});
    fleet.add_row(
        {"crash re-dispatches", std::to_string(crash_redispatches)});
    fleet.add_row({"hedges", std::to_string(hedges_won) + " won / " +
                                 std::to_string(hedges_launched) +
                                 " launched"});
    fleet.add_row(
        {"duplicates suppressed", std::to_string(duplicates_suppressed)});
    fleet.add_row({"degraded served", std::to_string(degraded_served)});
    fleet.add_row({"degraded time",
                   format_ms(degraded_seconds * 1e3) + " over " +
                       std::to_string(shed_degrade_entries) + " episode(s)"});
    fleet.add_row(
        {"time to recovery", format_ms(time_to_recovery * 1e3)});
    os << fleet.to_string();
  }
  return os.str();
}

namespace {

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e9));
}

}  // namespace

std::string Server::log_to_csv(const std::vector<CompletionRecord>& log) {
  std::ostringstream os;
  os << "id,status,arrival_ns,batch,batch_size,dispatch_ns,service_ns,"
        "completion_ns,latency_ns,deadline_ns,deadline_met,served_precision,"
        "hedged\n";
  for (const CompletionRecord& record : log) {
    os << record.id << ',' << request_status_name(record.status) << ','
       << to_ns(record.arrival) << ',' << record.batch << ','
       << record.batch_size << ',' << to_ns(record.dispatch) << ','
       << to_ns(record.service) << ',' << to_ns(record.completion) << ','
       << to_ns(record.completion - record.arrival) << ','
       << (std::isfinite(record.deadline) ? to_ns(record.deadline) : -1)
       << ',' << (record.deadline_met ? 1 : 0) << ','
       << (record.status == RequestStatus::kCompleted
               ? simgpu::precision_name(record.precision)
               : "-")
       << ',' << (record.hedged ? 1 : 0) << '\n';
  }
  return os.str();
}

}  // namespace dcn::serve
