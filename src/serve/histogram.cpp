#include "serve/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/error.hpp"

namespace dcn::serve {

LatencyHistogram::LatencyHistogram(double resolution)
    : resolution_(resolution) {
  if (resolution <= 0.0) {
    throw ConfigError("LatencyHistogram: resolution must be > 0, got " +
                      std::to_string(resolution));
  }
}

std::size_t LatencyHistogram::bucket_index(double seconds) const {
  if (seconds <= resolution_) return 0;
  const double octaves = std::log2(seconds / resolution_);
  const auto index = static_cast<std::int64_t>(
      std::floor(octaves * kSubBucketsPerOctave)) + 1;
  return static_cast<std::size_t>(std::max<std::int64_t>(index, 0));
}

double LatencyHistogram::bucket_mid(std::size_t index) const {
  if (index == 0) return resolution_;
  const double octaves =
      (static_cast<double>(index - 1) + 0.5) / kSubBucketsPerOctave;
  return resolution_ * std::exp2(octaves);
}

void LatencyHistogram::add(double seconds) {
  seconds = std::max(seconds, 0.0);
  const std::size_t index = bucket_index(seconds);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
}

double LatencyHistogram::quantile(double q) const {
  DCN_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q;
  if (count_ == 0) return 0.0;
  // Rank of the target sample (nearest-rank on [0, count-1]). The extreme
  // ranks are exact: the histogram tracks min/max outside the buckets.
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_ - 1)));
  if (rank <= 0) return min_;
  if (rank >= count_ - 1) return max_;
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      return std::clamp(bucket_mid(i), min_, max_);
    }
  }
  return max_;
}

}  // namespace dcn::serve
