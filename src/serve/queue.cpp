#include "serve/queue.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"

namespace dcn::serve {

BoundedQueue::BoundedQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity < 1) {
    throw ConfigError("BoundedQueue: capacity must be >= 1, got " +
                      std::to_string(capacity));
  }
}

bool BoundedQueue::offer(const Request& request) {
  if (queue_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  queue_.push_back(request);
  ++admitted_;
  return true;
}

std::vector<Request> BoundedQueue::pop(std::size_t max_count) {
  const std::size_t n = std::min(max_count, queue_.size());
  std::vector<Request> out(queue_.begin(),
                           queue_.begin() + static_cast<std::ptrdiff_t>(n));
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

Request BoundedQueue::take() {
  DCN_CHECK(!queue_.empty()) << "take() on empty queue";
  Request request = queue_.front();
  queue_.pop_front();
  return request;
}

const Request& BoundedQueue::front() const {
  DCN_CHECK(!queue_.empty()) << "front() on empty queue";
  return queue_.front();
}

}  // namespace dcn::serve
