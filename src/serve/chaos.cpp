#include "serve/chaos.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::serve {
namespace {

double parse_number(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("bad value '" + value + "' for chaos key '" + key +
                      "'");
  }
}

std::vector<int> parse_victims(const std::string& value) {
  std::vector<int> victims;
  std::istringstream stream(value);
  std::string token;
  while (std::getline(stream, token, '+')) {
    if (token.empty()) continue;
    victims.push_back(static_cast<int>(parse_number("victims", token)));
  }
  if (victims.empty()) {
    throw ConfigError("chaos victims list '" + value + "' is empty");
  }
  return victims;
}

/// Draw `count` distinct victims from [0, replicas) with a campaign-salted
/// RNG: partial Fisher-Yates over the index list, so the draw is a pure
/// function of (seed, salt, replicas, count).
std::vector<int> draw_victims(std::uint64_t seed, std::uint64_t salt,
                              int replicas, int count) {
  Rng rng(mix_seed(seed, salt));
  std::vector<int> pool(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) pool[static_cast<std::size_t>(r)] = r;
  std::vector<int> victims;
  victims.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    const std::size_t pick =
        static_cast<std::size_t>(k) +
        rng.index(pool.size() - static_cast<std::size_t>(k));
    std::swap(pool[static_cast<std::size_t>(k)], pool[pick]);
    victims.push_back(pool[static_cast<std::size_t>(k)]);
  }
  return victims;
}

void check_victims(const std::vector<int>& victims, int replicas,
                   const char* campaign) {
  for (int v : victims) {
    if (v < 0 || v >= replicas) {
      throw ConfigError(std::string(campaign) + " victim " +
                        std::to_string(v) + " out of range for " +
                        std::to_string(replicas) + " replicas");
    }
  }
  std::vector<int> sorted = victims;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw ConfigError(std::string(campaign) + " victims list has duplicates");
  }
}

}  // namespace

ChaosConfig ChaosConfig::parse(const std::string& spec, std::uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  std::istringstream campaigns(spec);
  std::string campaign;
  while (std::getline(campaigns, campaign, ';')) {
    if (campaign.empty()) continue;
    const std::size_t colon = campaign.find(':');
    const std::string kind = campaign.substr(0, colon);
    const bool is_crash = kind == "crash";
    const bool is_straggle = kind == "straggle";
    if (!is_crash && !is_straggle) {
      throw ConfigError("unknown chaos campaign '" + kind +
                        "' (expected crash | straggle)");
    }
    CrashStorm storm;
    StragglerWave wave;
    bool has_at = false;
    bool has_dur = false;
    if (colon != std::string::npos) {
      std::istringstream kv_stream(campaign.substr(colon + 1));
      std::string kv;
      while (std::getline(kv_stream, kv, ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          throw ConfigError("chaos key '" + kv + "' missing '=value'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "at") {
          storm.time = wave.onset = parse_number(key, value);
          has_at = true;
        } else if (key == "victims") {
          storm.victims = wave.victims = parse_victims(value);
        } else if (is_crash && key == "kills") {
          storm.kills = static_cast<int>(parse_number(key, value));
        } else if (is_crash && key == "perm") {
          storm.permanent = parse_number(key, value) != 0.0;
        } else if (is_straggle && key == "dur") {
          wave.duration = parse_number(key, value);
          has_dur = true;
        } else if (is_straggle && key == "count") {
          wave.count = static_cast<int>(parse_number(key, value));
        } else if (is_straggle && key == "factor") {
          wave.factor = parse_number(key, value);
        } else {
          throw ConfigError("unknown chaos key '" + key + "' for campaign '" +
                            kind + "'");
        }
      }
    }
    if (!has_at) {
      throw ConfigError("chaos campaign '" + campaign + "' needs at=<time>");
    }
    if (is_crash) {
      if (storm.kills < 1 && storm.victims.empty()) {
        throw ConfigError("crash storm needs kills >= 1 or a victims list");
      }
      config.storms.push_back(std::move(storm));
    } else {
      if (!has_dur) {
        throw ConfigError("straggler wave '" + campaign +
                          "' needs dur=<seconds>");
      }
      if (wave.factor < 1.0) {
        throw ConfigError("straggler factor must be >= 1, got " +
                          std::to_string(wave.factor));
      }
      config.waves.push_back(std::move(wave));
    }
  }
  return config;
}

std::vector<simgpu::FaultPlan> materialize_chaos(const ChaosConfig& config,
                                                 int replicas) {
  if (replicas < 1) {
    throw ConfigError("materialize_chaos: replicas must be >= 1, got " +
                      std::to_string(replicas));
  }
  std::vector<simgpu::FaultPlan> plans(static_cast<std::size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    plans[static_cast<std::size_t>(r)].seed =
        mix_seed(config.seed, static_cast<std::uint64_t>(r));
  }
  for (std::size_t s = 0; s < config.storms.size(); ++s) {
    const CrashStorm& storm = config.storms[s];
    std::vector<int> victims = storm.victims;
    if (victims.empty()) {
      if (storm.kills > replicas) {
        throw ConfigError("crash storm kills " + std::to_string(storm.kills) +
                          " of only " + std::to_string(replicas) +
                          " replicas");
      }
      // Storm-index salt: adding or removing another campaign does not
      // reshuffle this storm's draw.
      victims = draw_victims(config.seed, 1000 + s, replicas, storm.kills);
    }
    check_victims(victims, replicas, "crash storm");
    for (int v : victims) {
      plans[static_cast<std::size_t>(v)].die_after(
          storm.time, storm.permanent ? -1 : 1);
    }
  }
  for (std::size_t w = 0; w < config.waves.size(); ++w) {
    const StragglerWave& wave = config.waves[w];
    std::vector<int> victims = wave.victims;
    if (victims.empty()) {
      if (wave.count > replicas) {
        throw ConfigError("straggler wave slows " +
                          std::to_string(wave.count) + " of only " +
                          std::to_string(replicas) + " replicas");
      }
      victims = draw_victims(config.seed, 2000 + w, replicas, wave.count);
    }
    check_victims(victims, replicas, "straggler wave");
    for (int v : victims) {
      plans[static_cast<std::size_t>(v)].straggle(wave.onset, wave.duration,
                                                  wave.factor);
    }
  }
  return plans;
}

}  // namespace dcn::serve
