// Dynamic batching over the admission queue.
//
// Clipper/Triton-style policy with two flush triggers:
//  - size: as soon as max_batch requests are pending, a batch is ready; it
//    is cut the moment the next replica is free.
//  - timeout: a partial batch is cut once the oldest pending request has
//    waited `timeout` seconds (or when the replica frees up, if later), so
//    light traffic is never parked indefinitely waiting for a full batch.
//
// The batcher itself is a pure state machine over (arrival events, replica
// free times): given the same inputs it cuts the same batches at the same
// virtual instants, which is what the serving determinism contract rests
// on. max_batch = 1 with any timeout degenerates to serial (eager) serving
// — the baseline `bench_serving` compares against.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/queue.hpp"

namespace dcn::serve {

struct BatchPolicy {
  /// Largest batch one replica inference may carry.
  int max_batch = 8;
  /// Seconds a partial batch may age (from its oldest request's arrival)
  /// before it is flushed anyway. 0 flushes immediately on arrival.
  double timeout = 2.0e-3;
};

enum class FlushTrigger { kSize, kTimeout };

const char* flush_trigger_name(FlushTrigger trigger);

/// One cut batch, ready for dispatch. `requests` holds only live requests;
/// requests whose deadline already passed at the cut instant are diverted
/// into `expired` so no replica time is spent on answers the client has
/// abandoned, and the live slots they vacate are refilled from the queue.
struct Batch {
  std::int64_t index = 0;
  double cut_time = 0.0;
  FlushTrigger trigger = FlushTrigger::kTimeout;
  std::vector<Request> requests;
  std::vector<Request> expired;
};

class DynamicBatcher {
 public:
  /// Throws ConfigError for max_batch < 1, timeout < 0, or
  /// queue_capacity < max_batch (a full batch must fit in the queue).
  DynamicBatcher(BatchPolicy policy, std::size_t queue_capacity);

  /// Admit one arriving request (reject-on-full; see BoundedQueue::offer).
  bool offer(const Request& request) { return queue_.offer(request); }

  /// Earliest virtual instant a batch can be cut, given the next replica in
  /// line is free at `replica_free` (callers clamp to the current time):
  /// a full batch is ready at `replica_free`; a partial one at
  /// max(oldest arrival + timeout, replica_free). nullopt when nothing is
  /// pending.
  std::optional<double> next_flush_time(double replica_free) const;

  /// Cut up to max_batch *live* pending requests at virtual time `now`,
  /// diverting already-expired requests into Batch::expired (they do not
  /// consume batch slots). Requires a non-empty queue; the trigger records
  /// whether size or timeout fired. A batch whose every request expired has
  /// an empty `requests` — callers skip dispatch but still account the
  /// expiries.
  Batch flush(double now);

  /// Empty the queue without cutting a batch (fleet-extinct drain): the
  /// requests are returned in arrival order and no flush is counted.
  std::vector<Request> drain();

  const BoundedQueue& queue() const { return queue_; }
  const BatchPolicy& policy() const { return policy_; }

  std::int64_t batches() const { return next_index_; }
  std::int64_t size_flushes() const { return size_flushes_; }
  std::int64_t timeout_flushes() const { return timeout_flushes_; }
  /// Requests dropped at batch formation because their deadline had passed.
  std::int64_t expired_drops() const { return expired_drops_; }

 private:
  BatchPolicy policy_;
  BoundedQueue queue_;
  std::int64_t next_index_ = 0;
  std::int64_t size_flushes_ = 0;
  std::int64_t timeout_flushes_ = 0;
  std::int64_t expired_drops_ = 0;
};

}  // namespace dcn::serve
