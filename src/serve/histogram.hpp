// Streaming latency histogram with log-spaced buckets (HDR-histogram
// style).
//
// Serving runs complete millions of requests; storing every latency to sort
// for percentiles is the wrong shape. Instead each sample lands in one of a
// fixed set of buckets spaced `kSubBucketsPerOctave` per power of two above
// a base resolution, giving a bounded relative error (~9% at 8 sub-buckets)
// at O(1) memory and O(1) add(). Quantiles walk the cumulative counts and
// report the geometric midpoint of the holding bucket, clamped to the exact
// observed min/max so q=0 and q=1 stay sharp.
#pragma once

#include <cstdint>
#include <vector>

namespace dcn::serve {

class LatencyHistogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;

  /// `resolution` is the smallest distinguishable latency (seconds);
  /// samples at or below it share the first bucket. Throws ConfigError for
  /// resolution <= 0.
  explicit LatencyHistogram(double resolution = 1.0e-6);

  /// Record one latency (negative values are clamped to 0).
  void add(double seconds);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Latency at quantile q in [0, 1] (0 when empty). q=0.5 is the median;
  /// q=0.99 the p99 the SLO report quotes.
  double quantile(double q) const;

 private:
  std::size_t bucket_index(double seconds) const;
  double bucket_mid(std::size_t index) const;

  double resolution_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dcn::serve
