// Replica health tracking, circuit breaking, and respawn policy.
//
// The fleet self-healing layer (DESIGN.md "Fleet failure model &
// self-healing") separates *mechanism* from *policy*: the Server owns the
// replica devices and the event loop; this module owns the per-replica
// health state machine it consults before every dispatch:
//
//   - HealthMonitor: healthy / suspect / dead per replica. Suspicion comes
//     from a latency EWMA compared against the fleet's fastest replica
//     (min-EWMA baseline), the classic straggler detector; death comes from
//     crash faults the server reports. Dead replicas respawn under a
//     bounded-restart budget with seeded exponential backoff, so a
//     permanently faulted replica is given up on deterministically.
//   - CircuitBreaker: closed / open / half-open per replica, driven by
//     consecutive service failures. Open breakers divert dispatch away
//     from a replica that keeps failing; after a cool-down the breaker
//     half-opens and trial traffic decides whether it closes again.
//
// Everything runs on the virtual clock and is a pure function of the
// observation sequence — no wall time, no hidden RNG draws — so fleet
// behaviour replays byte-for-byte from a seed (the chaos determinism
// contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/retry.hpp"

namespace dcn::serve {

// --- Circuit breaker --------------------------------------------------------

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerPolicy {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// Cool-down before an open breaker half-opens (virtual seconds).
  double open_seconds = 0.050;
  /// Consecutive half-open successes required to close again.
  int half_open_successes = 2;
};

/// Per-replica circuit breaker. State is stored as closed/open plus the
/// open instant; half-open is *derived* from the clock (open and past the
/// cool-down), so no timer event is needed to transition.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {});

  /// State at virtual time `now`.
  BreakerState state(double now) const;
  /// Whether dispatch may use the replica at `now` (closed or half-open).
  bool allows(double now) const { return state(now) != BreakerState::kOpen; }
  /// First instant >= `now` at which the breaker stops blocking (now when
  /// it already allows traffic).
  double allows_at(double now) const;

  void record_success(double now);
  void record_failure(double now);

  /// Times the breaker tripped open (re-opens from half-open included).
  int opens() const { return opens_; }
  const BreakerPolicy& policy() const { return policy_; }

 private:
  BreakerPolicy policy_;
  BreakerState stored_ = BreakerState::kClosed;
  double opened_at_ = 0.0;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int opens_ = 0;
};

// --- Health monitor ---------------------------------------------------------

enum class ReplicaState { kHealthy, kSuspect, kDead };

const char* replica_state_name(ReplicaState state);

struct HealthPolicy {
  /// EWMA smoothing for per-replica service latency (0 < alpha <= 1).
  double ewma_alpha = 0.3;
  /// A replica is suspect when its EWMA exceeds `suspect_factor` times the
  /// fleet's fastest EWMA (straggler detection; needs >= 2 sampled
  /// replicas).
  double suspect_factor = 3.0;
  /// Samples a replica needs before it can be suspected.
  int min_samples = 3;
  /// How often a suspect replica is probed with real traffic so its EWMA
  /// can decay back (virtual seconds).
  double probe_interval = 0.050;
  /// Bounded respawn budget per replica; once spent the replica is
  /// permanently lost.
  int max_restarts = 3;
  /// Backoff between respawn attempts (jitter drawn from a stream seeded
  /// per replica with mix_seed(respawn_seed, replica)).
  RetryPolicy respawn_backoff{.max_attempts = 1,
                              .base_backoff = 5.0e-3,
                              .multiplier = 2.0,
                              .max_backoff = 0.1,
                              .jitter = 0.0};
  std::uint64_t respawn_seed = 0x5eed;
  /// Delay between a replica crash and the server acting on it (failure
  /// detection + re-dispatch latency, virtual seconds).
  double failure_detection = 1.0e-3;
  /// Per-replica circuit-breaker policy.
  BreakerPolicy breaker;
};

/// One health-state transition, in fire order (the fleet's event log; the
/// profiler renders these as instant events).
struct HealthTransition {
  double time = 0.0;
  int replica = -1;
  ReplicaState from = ReplicaState::kHealthy;
  ReplicaState to = ReplicaState::kHealthy;
  std::string reason;
};

class HealthMonitor {
 public:
  /// Throws ConfigError for replicas < 1 or out-of-range policy knobs.
  HealthMonitor(int replicas, HealthPolicy policy);

  ReplicaState state(int replica) const;
  bool alive(int replica) const {
    return state(replica) != ReplicaState::kDead;
  }
  int healthy_count() const;
  int suspect_count() const;
  int dead_count() const;

  CircuitBreaker& breaker(int replica);
  const CircuitBreaker& breaker(int replica) const;

  /// Latency EWMA of `replica` (0 before any sample).
  double latency_ewma(int replica) const;

  /// Record a completed service: updates the EWMA, feeds the breaker, and
  /// re-evaluates suspicion (healthy <-> suspect) against the fleet
  /// baseline.
  void observe_success(int replica, double now, double service_seconds);
  /// Record a failed service: feeds the breaker only.
  void observe_failure(int replica, double now);

  /// Transition `replica` to dead (crash detected at `now`).
  void mark_dead(int replica, double now, const std::string& reason);
  /// Whether the respawn budget still has restarts left.
  bool can_respawn(int replica) const;
  /// Consume one restart from the budget and return the backoff delay to
  /// wait before the attempt (seeded per replica; requires can_respawn).
  double next_respawn_delay(int replica);
  int restarts_used(int replica) const;
  /// Transition `replica` back to healthy after a successful restart;
  /// resets its EWMA and breaker (a fresh process has no history).
  void mark_respawned(int replica, double now);
  /// Mark a replica permanently lost (respawn budget spent); stays dead and
  /// logs the terminal transition.
  void mark_lost(int replica, double now, const std::string& reason);

  /// Whether a suspect replica is due a traffic probe at `now`.
  bool probe_due(int replica, double now) const;
  void note_probe(int replica, double now);

  const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }
  const HealthPolicy& policy() const { return policy_; }

 private:
  struct Entry {
    ReplicaState state = ReplicaState::kHealthy;
    CircuitBreaker breaker;
    double ewma = 0.0;
    int samples = 0;
    int restarts_used = 0;
    double last_probe = -1.0e300;
    SeededBackoff respawn;
    explicit Entry(const HealthPolicy& policy, std::uint64_t seed)
        : breaker(policy.breaker), respawn(policy.respawn_backoff, seed) {}
  };

  void transition(int replica, double now, ReplicaState to,
                  const std::string& reason);
  void reevaluate_suspicion(int replica, double now);
  Entry& entry(int replica);
  const Entry& entry(int replica) const;

  HealthPolicy policy_;
  std::vector<Entry> entries_;
  std::vector<HealthTransition> transitions_;
};

}  // namespace dcn::serve
