// Deadline-aware hedged requests (tail-latency mitigation).
//
// "The Tail at Scale" policy: when a dispatched batch is still running past
// a delay derived from the observed service-time distribution (factor x
// p95 by default), an identical hedge is launched on a second replica and
// the first completion wins. The duplicate completion is suppressed
// deterministically — exactly one CompletionRecord per request, with the
// `hedged` CSV column recording that a hedge raced for it.
//
// The controller only decides *when* a hedge is warranted; the Server owns
// replica selection and the duplicate-suppression bookkeeping. Service
// times feed a streaming histogram, so the hedge delay adapts as the run
// warms up; until `min_samples` observations it never fires (hedging off a
// cold estimate amplifies load exactly when the fleet knows least).
#pragma once

#include <cstdint>
#include <optional>

#include "serve/histogram.hpp"

namespace dcn::serve {

struct HedgePolicy {
  bool enabled = false;
  /// Quantile of observed service times the hedge delay derives from.
  double quantile = 0.95;
  /// Hedge delay = max(min_delay, factor * quantile(service)).
  double factor = 1.0;
  /// Floor so early noisy estimates cannot hedge near-instantly.
  double min_delay = 1.0e-4;
  /// Observations required before hedging arms.
  int min_samples = 20;
};

class HedgeController {
 public:
  /// Throws ConfigError for out-of-range policy knobs.
  explicit HedgeController(HedgePolicy policy = {});

  /// Feed one completed service time (seconds).
  void observe(double service_seconds);

  /// Current hedge delay, or nullopt while disabled / not yet armed.
  std::optional<double> delay() const;

  /// Whether a batch whose primary service will take `service_seconds`
  /// should race a hedge.
  bool should_hedge(double service_seconds) const;

  std::int64_t observations() const { return histogram_.count(); }
  const HedgePolicy& policy() const { return policy_; }

 private:
  HedgePolicy policy_;
  LatencyHistogram histogram_;
};

}  // namespace dcn::serve
