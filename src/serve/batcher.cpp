#include "serve/batcher.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"

namespace dcn::serve {

const char* flush_trigger_name(FlushTrigger trigger) {
  switch (trigger) {
    case FlushTrigger::kSize:
      return "size";
    case FlushTrigger::kTimeout:
      return "timeout";
  }
  return "unknown";
}

DynamicBatcher::DynamicBatcher(BatchPolicy policy, std::size_t queue_capacity)
    : policy_(policy), queue_(queue_capacity) {
  if (policy.max_batch < 1) {
    throw ConfigError("DynamicBatcher: max_batch must be >= 1, got " +
                      std::to_string(policy.max_batch));
  }
  if (policy.timeout < 0.0) {
    throw ConfigError("DynamicBatcher: timeout must be >= 0, got " +
                      std::to_string(policy.timeout));
  }
  if (queue_capacity < static_cast<std::size_t>(policy.max_batch)) {
    throw ConfigError(
        "DynamicBatcher: queue capacity " + std::to_string(queue_capacity) +
        " cannot hold one max_batch of " + std::to_string(policy.max_batch));
  }
}

std::optional<double> DynamicBatcher::next_flush_time(
    double replica_free) const {
  if (queue_.empty()) return std::nullopt;
  if (queue_.size() >= static_cast<std::size_t>(policy_.max_batch)) {
    return replica_free;
  }
  return std::max(queue_.front().arrival + policy_.timeout, replica_free);
}

Batch DynamicBatcher::flush(double now) {
  DCN_CHECK(!queue_.empty()) << "flush on empty batcher";
  Batch batch;
  batch.index = next_index_++;
  batch.cut_time = now;
  batch.trigger = queue_.size() >= static_cast<std::size_t>(policy_.max_batch)
                      ? FlushTrigger::kSize
                      : FlushTrigger::kTimeout;
  if (batch.trigger == FlushTrigger::kSize) {
    ++size_flushes_;
  } else {
    ++timeout_flushes_;
  }
  // Expired requests are dropped here, at batch formation, so they neither
  // consume a live slot nor burn replica time; live requests behind them in
  // the queue backfill the freed slots.
  while (batch.requests.size() < static_cast<std::size_t>(policy_.max_batch) &&
         !queue_.empty()) {
    Request request = queue_.take();
    if (request.deadline < now) {
      ++expired_drops_;
      batch.expired.push_back(request);
    } else {
      batch.requests.push_back(request);
    }
  }
  return batch;
}

std::vector<Request> DynamicBatcher::drain() {
  return queue_.pop(queue_.size());
}

}  // namespace dcn::serve
