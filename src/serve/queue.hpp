// Bounded FIFO admission queue.
//
// The server's only back-pressure mechanism: when the queue is full, the
// arriving request is rejected immediately (load shedding at admission, the
// Clipper/Triton policy) rather than queued into unbounded latency. The
// queue holds admitted-but-not-yet-batched requests; the dynamic batcher
// drains it in arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/traffic.hpp"

namespace dcn::serve {

class BoundedQueue {
 public:
  /// Throws ConfigError for capacity < 1.
  explicit BoundedQueue(std::size_t capacity);

  /// Admit `request` unless the queue is full. A full queue counts a
  /// rejection and returns false; the caller owns the rejected request's
  /// bookkeeping.
  bool offer(const Request& request);

  /// Pop up to `max_count` requests in arrival order.
  std::vector<Request> pop(std::size_t max_count);

  /// Pop exactly the oldest request (requires !empty()).
  Request take();

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }
  std::size_t capacity() const { return capacity_; }
  /// Oldest admitted request (requires !empty()).
  const Request& front() const;

  std::int64_t admitted() const { return admitted_; }
  std::int64_t rejected() const { return rejected_; }

 private:
  std::deque<Request> queue_;
  std::size_t capacity_;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace dcn::serve
