// Serving backends: the unit the fleet dispatches batches to.
//
// PR 4 hard-wired one replica = one simgpu::Device + ios::ResilientSession.
// Pipeline-parallel sharding (src/shard) breaks that identity: a fleet
// entry may now be a whole-model replica on one device OR a pipeline group
// spanning K devices, one model stage each. The Backend interface is the
// seam: the Server's event loop (batching, health, hedging, shedding,
// chaos, crash re-dispatch) speaks only to this surface, so every
// self-healing behaviour composes with both backend shapes unchanged — a
// stage death degrades one pipeline group exactly like a replica death
// degrades one whole-model replica, never the fleet.
//
// Determinism contract: serve_batch() must be a pure function of
// (backend construction state, start, batch, the salts armed immediately
// before the call). The Server arms per-dispatch salts so a batch's
// service time is independent of which fleet entry runs it and of earlier
// batches' faults — the property that keeps completion CSVs byte-identical
// across replica AND pipeline-group counts under light load.
#pragma once

#include <cstdint>
#include <memory>

#include "ios/executor.hpp"
#include "simgpu/faults.hpp"
#include "simgpu/spec.hpp"

namespace dcn::serve {

/// Outcome of one synchronous batch service on the virtual clock.
struct BackendOutcome {
  /// Whether the batch produced a result (retries exhausted => false).
  bool ok = false;
  /// Host-clock instant the service finished (valid even when !ok: the
  /// time the failure was established).
  double end = 0.0;
  /// Instant the backend can accept its next dispatch. A whole-model
  /// replica is busy until `end`; a pipeline group frees its first stage
  /// as soon as the last microbatch clears it, so consecutive batches
  /// overlap into the steady-state wavefront and fill/drain is paid once
  /// per burst, not once per batch.
  double ready = 0.0;
};

/// One dispatchable fleet entry. Single-owner, single-thread, like the
/// Device it wraps. Constructors perform the warm initialization (library
/// load + weight upload on every owned device) and reset clocks to zero,
/// so serving starts from a warm fleet.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Precision this backend serves at (pool membership for shedding).
  virtual simgpu::Precision precision() const = 0;

  /// Simulated devices this backend occupies — the cost-per-request
  /// denominator: a pipeline group burns K device-seconds per busy second.
  virtual int device_count() const = 0;

  /// Arm the per-dispatch transient fault plan. `base` is the server-level
  /// plan; `salt` is the dispatch salt. Implementations derive one
  /// independent seeded stream per owned device from (base.seed, salt).
  /// An empty base plan must detach all injectors.
  virtual void arm_faults(const simgpu::FaultPlan& base,
                          std::uint64_t salt) = 0;

  /// Re-anchor retry-backoff jitter for the coming dispatch (same salt
  /// discipline as arm_faults).
  virtual void reseed_backoff(std::uint64_t backoff_seed,
                              std::uint64_t salt) = 0;

  /// Serve one batch starting at `start` (>= any prior end). Advances the
  /// owned device clocks; recovery (retries, resets, backoff) is resolved
  /// inside, so the outcome is final when the call returns.
  virtual BackendOutcome serve_batch(double start, std::int64_t batch) = 0;

  /// Full restart at `now` after a (chaos) death: hard-reset every owned
  /// device and re-initialize. Returns the instant the backend is ready to
  /// serve again (restart cost paid on the virtual clock).
  virtual double restart(double now) = 0;

  /// Recovery statistics aggregated over the owned sessions.
  virtual ios::SessionStats stats() const = 0;
};

/// The classic PR-4 replica: the whole model on one private device behind
/// one resilient session. Behaviour (and therefore every committed serving
/// baseline) is byte-identical to the pre-Backend Server::Replica.
class WholeModelBackend : public Backend {
 public:
  /// `graph` must outlive the backend. `recorder` may be null.
  WholeModelBackend(const graph::Graph& graph, ios::Schedule schedule,
                    const simgpu::DeviceSpec& spec,
                    const ios::ResilientOptions& resilient,
                    simgpu::Precision precision,
                    profiler::Recorder* recorder);

  simgpu::Precision precision() const override { return precision_; }
  int device_count() const override { return 1; }
  void arm_faults(const simgpu::FaultPlan& base, std::uint64_t salt) override;
  void reseed_backoff(std::uint64_t backoff_seed,
                      std::uint64_t salt) override;
  BackendOutcome serve_batch(double start, std::int64_t batch) override;
  double restart(double now) override;
  ios::SessionStats stats() const override { return session_->stats(); }

  /// Weight bytes this replica streams per run because the model exceeds
  /// its device's memory budget (ResilientOptions::allow_weight_paging).
  std::int64_t paged_weight_bytes() const {
    return session_->paged_weight_bytes();
  }

 private:
  simgpu::Precision precision_;
  std::unique_ptr<simgpu::Device> device_;
  std::unique_ptr<ios::ResilientSession> session_;
};

}  // namespace dcn::serve
