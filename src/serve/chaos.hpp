// Seeded chaos schedules for the serve fleet.
//
// A ChaosSchedule is the acceptance-harness input: a declarative list of
// fleet-level fault campaigns — crash storms (correlated multi-replica
// deaths at one instant) and straggler waves (a set of replicas slowed by a
// factor over a window) — that materializes into one simgpu::FaultPlan per
// replica. Victims are either named explicitly or drawn without replacement
// from an RNG salted per campaign (mix_seed(seed, campaign index)), so the
// same (config, replica count) always produces the same per-replica plans:
// chaos runs replay byte-for-byte, which is what lets the CI gate pin
// goodput and recovery-time numbers.
//
// Overload bursts — the third chaos dimension — need no machinery here:
// TrafficConfig's burst/diurnal modulation already shapes the arrival
// trace; a chaos scenario simply pairs an aggressive trace with this
// schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simgpu/faults.hpp"

namespace dcn::serve {

/// Correlated crash: `kills` replicas die at `time`. Permanent storms keep
/// re-killing on every restart attempt (the replica is lost once its
/// respawn budget is spent); transient storms let one restart succeed.
struct CrashStorm {
  double time = 0.0;
  int kills = 1;
  bool permanent = true;
  /// Explicit victim replica indices; empty = drawn from the seeded RNG.
  std::vector<int> victims;
};

/// Straggler wave: `count` replicas serve `factor`x slower over
/// [onset, onset + duration).
struct StragglerWave {
  double onset = 0.0;
  double duration = 0.0;
  int count = 1;
  double factor = 4.0;
  std::vector<int> victims;
};

struct ChaosConfig {
  std::uint64_t seed = 0;
  std::vector<CrashStorm> storms;
  std::vector<StragglerWave> waves;

  bool empty() const { return storms.empty() && waves.empty(); }

  /// Parse a CLI spec: semicolon-separated campaigns of the form
  ///   crash:at=<t>[,kills=<n>][,perm=<0|1>][,victims=<i+j+...>]
  ///   straggle:at=<t>,dur=<t>[,count=<n>][,factor=<f>][,victims=<i+j+...>]
  /// Example: "crash:at=2,kills=2;straggle:at=4,dur=2,count=3,factor=6"
  /// Throws ConfigError on malformed specs.
  static ChaosConfig parse(const std::string& spec, std::uint64_t seed = 0);
};

/// Materialize the schedule into one fleet-level FaultPlan per replica
/// (plan seed = mix_seed(config.seed, replica)). Validates victim indices
/// and kill/count sizes against `replicas`; throws ConfigError when a
/// campaign cannot be cast. Deterministic: same (config, replicas), same
/// plans.
std::vector<simgpu::FaultPlan> materialize_chaos(const ChaosConfig& config,
                                                 int replicas);

}  // namespace dcn::serve
