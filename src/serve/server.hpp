// SLO-aware dynamic-batching inference server on the virtual clock.
//
// A discrete-event simulation of a deployed serving stack: an open-loop
// arrival trace feeds a bounded admission queue; the dynamic batcher cuts
// batches (size- or timeout-triggered); batches dispatch round-robin to N
// model replicas, each owning its own simgpu::Device + ios::ResilientSession
// so injected faults are absorbed by retry/device-reset recovery without
// losing accepted requests. Every request ends in exactly one
// CompletionRecord (completed, rejected at admission, expired in queue, or
// failed after the retry budget), and the report aggregates tail latency
// (streaming histogram p50/p95/p99), throughput, reject rate, and SLO
// attainment.
//
// Determinism contract (DESIGN.md "Serving model"): the whole simulation is
// a pure function of (graph, schedule, config, trace). Per-batch salts
// reseed both the fault injector and the backoff jitter stream from the
// batch *index*, so a batch's service time — including recovery — does not
// depend on which replica runs it or on earlier batches' faults. The
// completion log therefore reproduces byte-for-byte from a fixed seed, and
// stays byte-identical across replica counts whenever no batch has to wait
// for a busy replica (the light-load regime the acceptance tests pin).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ios/executor.hpp"
#include "profiler/recorder.hpp"
#include "serve/batcher.hpp"
#include "serve/histogram.hpp"
#include "serve/traffic.hpp"
#include "simgpu/faults.hpp"
#include "simgpu/spec.hpp"

namespace dcn::serve {

enum class RequestStatus {
  kCompleted,  // served; latency and deadline_met are meaningful
  kRejected,   // shed at admission (queue full)
  kExpired,    // admitted, but its deadline passed before dispatch
  kFailed,     // its batch exhausted the retry budget on a fatal fault
};

const char* request_status_name(RequestStatus status);

/// Final outcome of one request. `replica` is deliberately absent from the
/// CSV rendering: which replica served a batch is a scheduling detail, and
/// excluding it keeps the canonical log invariant across replica counts.
struct CompletionRecord {
  std::int64_t id = 0;
  RequestStatus status = RequestStatus::kCompleted;
  double arrival = 0.0;
  /// Batch this request was cut into (-1 when rejected at admission).
  std::int64_t batch = -1;
  /// Served requests in that batch (0 when never dispatched).
  int batch_size = 0;
  /// Replica that ran the batch (-1 when never dispatched).
  int replica = -1;
  /// Batch cut instant (= service start; 0 when never dispatched).
  double dispatch = 0.0;
  /// Device time the batch took, retries and backoff included.
  double service = 0.0;
  /// Instant the request left the system (rejection/expiry instant for
  /// non-served requests).
  double completion = 0.0;
  double deadline = std::numeric_limits<double>::infinity();
  bool deadline_met = false;
};

/// Aggregate serving metrics for one trace.
struct ServingReport {
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t expired = 0;
  std::int64_t failed = 0;
  std::int64_t completed = 0;

  std::int64_t batches = 0;
  std::int64_t size_flushes = 0;
  std::int64_t timeout_flushes = 0;
  double mean_batch_size = 0.0;
  std::int64_t max_queue_depth = 0;

  /// Requests carrying a finite deadline, and how many completed within it.
  std::int64_t slo_tracked = 0;
  std::int64_t slo_met = 0;

  /// End-to-end (arrival -> completion) latency of completed requests.
  LatencyHistogram latency;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  /// Last completion instant, and completed / makespan.
  double makespan = 0.0;
  double throughput = 0.0;

  /// Recovery work summed over replicas.
  int transient_retries = 0;
  int reinitializations = 0;

  double reject_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(rejected) /
                              static_cast<double>(offered);
  }
  double slo_attainment() const {
    return slo_tracked == 0 ? 1.0
                            : static_cast<double>(slo_met) /
                                  static_cast<double>(slo_tracked);
  }

  /// Human-readable metrics block (the serving analog of render_report).
  std::string to_string() const;
};

struct ServerConfig {
  BatchPolicy batch;
  /// Admission-queue bound (reject-on-full).
  std::size_t queue_capacity = 64;
  /// Model replicas, each with a private device + resilient session.
  int replicas = 1;
  /// Precision every replica serves at (unless overridden per replica).
  simgpu::Precision precision = simgpu::Precision::kFp32;
  /// Per-replica precision overrides for mixed fleets (e.g. an int8 fast
  /// path alongside an fp32 reference replica). Empty = all replicas use
  /// `precision`; otherwise the length must equal `replicas`.
  std::vector<simgpu::Precision> replica_precisions;
  simgpu::DeviceSpec device;
  ios::ResilientOptions resilient;
  /// Base fault plan; re-armed before every dispatched batch with a seed
  /// mixed from (plan.seed, batch index). Empty = fault-free serving.
  simgpu::FaultPlan faults;
};

class Server {
 public:
  /// `graph` must outlive the server. Replicas are constructed and
  /// initialized here (library load + weight upload on each private
  /// device), so serve() starts from a warm fleet. Throws ConfigError for
  /// replicas < 1.
  Server(const graph::Graph& graph, ios::Schedule schedule,
         ServerConfig config, profiler::Recorder* recorder = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Run the trace through the server. `trace` must be arrival-sorted with
  /// strictly increasing ids (generate_trace output qualifies). Callable
  /// once per Server: replica clocks carry serving history.
  ServingReport serve(const std::vector<Request>& trace);

  /// Per-request completion log, sorted by request id (valid after
  /// serve()).
  const std::vector<CompletionRecord>& log() const { return log_; }

  /// Canonical byte-stable CSV rendering of a completion log: integral
  /// nanosecond timestamps, no replica column (see CompletionRecord).
  static std::string log_to_csv(const std::vector<CompletionRecord>& log);

 private:
  struct Replica;

  const graph::Graph& graph_;
  ios::Schedule schedule_;
  ServerConfig config_;
  profiler::Recorder* recorder_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<CompletionRecord> log_;
  bool served_ = false;
};

}  // namespace dcn::serve
