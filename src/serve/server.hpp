// SLO-aware, self-healing dynamic-batching inference fleet on the virtual
// clock.
//
// A discrete-event simulation of a deployed serving stack: an open-loop
// arrival trace feeds a bounded admission queue; the dynamic batcher cuts
// batches (size- or timeout-triggered, dropping already-expired requests at
// formation); batches dispatch to the healthiest free replica, each replica
// owning its own simgpu::Device + ios::ResilientSession so injected faults
// are absorbed by retry/device-reset recovery without losing accepted
// requests.
//
// On top of the PR-4 serving core sits the fleet self-healing layer
// (DESIGN.md "Fleet failure model & self-healing"):
//   - chaos faults: per-replica FaultPlans carrying replica deaths and
//     straggler windows (materialized from a seeded ChaosSchedule);
//   - health: a HealthMonitor tracks healthy/suspect/dead per replica with
//     latency-EWMA straggler detection, per-replica circuit breakers, and a
//     bounded-restart respawn policy; dispatch is health-weighted instead
//     of round-robin;
//   - crash re-dispatch: a batch in flight when its replica dies is
//     re-dispatched to a survivor after a failure-detection delay, so
//     crashes never lose accepted requests while any replica survives;
//   - hedged requests: slow batches race a duplicate on a second free
//     replica, first completion wins, duplicates suppressed
//     deterministically;
//   - load shedding: under queue pressure admitted traffic degrades to the
//     INT8 replica pool before anything is rejected, recorded per request
//     in the served_precision CSV column.
//
// Every request ends in exactly one CompletionRecord (completed, rejected
// at admission, deadline-expired, or failed), and the report aggregates
// tail latency, throughput, SLO attainment, goodput, and the fleet's
// availability story (deaths, respawns, recovery time).
//
// Determinism contract (DESIGN.md "Serving model"): the whole simulation is
// a pure function of (graph, schedule, config, trace). Per-dispatch salts
// reseed the fault injector and backoff jitter from the batch index (plus
// the attempt number for crash re-dispatches and a separate channel for
// hedges), so a batch's service time — recovery included — does not depend
// on which replica runs it or on earlier batches' faults. The completion
// log therefore reproduces byte-for-byte from a fixed seed, and stays
// byte-identical across replica counts whenever no batch has to wait for a
// busy replica (the light-load regime the acceptance tests pin).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ios/executor.hpp"
#include "profiler/recorder.hpp"
#include "serve/backend.hpp"
#include "serve/batcher.hpp"
#include "serve/chaos.hpp"
#include "serve/health.hpp"
#include "serve/hedge.hpp"
#include "serve/histogram.hpp"
#include "serve/shed.hpp"
#include "serve/traffic.hpp"
#include "simgpu/faults.hpp"
#include "simgpu/spec.hpp"

namespace dcn::serve {

enum class RequestStatus {
  kCompleted,        // served; latency and deadline_met are meaningful
  kRejected,         // shed at admission (queue full)
  kDeadlineExpired,  // admitted, but its deadline passed before service
  kFailed,           // lost: retry budget exhausted, or the whole fleet died
};

const char* request_status_name(RequestStatus status);

/// Final outcome of one request. `replica` is deliberately absent from the
/// CSV rendering: which replica served a batch is a scheduling detail, and
/// excluding it keeps the canonical log invariant across replica counts.
struct CompletionRecord {
  std::int64_t id = 0;
  RequestStatus status = RequestStatus::kCompleted;
  double arrival = 0.0;
  /// Batch this request was cut into (-1 when rejected at admission).
  std::int64_t batch = -1;
  /// Served requests in that batch (0 when never dispatched).
  int batch_size = 0;
  /// Replica whose completion won (-1 when never dispatched).
  int replica = -1;
  /// Batch cut instant (= service start; 0 when never dispatched).
  double dispatch = 0.0;
  /// Time from dispatch to the winning completion, retries, backoff, and
  /// straggler slowdown included.
  double service = 0.0;
  /// Instant the request left the system (rejection/expiry instant for
  /// non-served requests).
  double completion = 0.0;
  double deadline = std::numeric_limits<double>::infinity();
  bool deadline_met = false;
  /// Precision of the replica whose completion won (meaningful only for
  /// completed requests; the CSV renders "-" otherwise).
  simgpu::Precision precision = simgpu::Precision::kFp32;
  /// Whether a hedge raced for this request's batch.
  bool hedged = false;
  /// Dispatch attempts for the batch (1 + crash re-dispatches).
  int dispatch_attempts = 0;
};

/// Fleet self-healing configuration (all mitigations off by default — the
/// PR-4 serving behaviour — except health tracking, which is always on).
struct FleetOptions {
  HealthPolicy health;
  HedgePolicy hedge;
  ShedPolicy shed;
  /// Seeded fleet-level fault schedule (crash storms, straggler waves).
  ChaosConfig chaos;
};

/// Aggregate serving metrics for one trace.
struct ServingReport {
  /// Pool label this server ran under (ServerConfig::pool; may be empty).
  std::string pool;
  /// Fleet size the occupancy denominator uses (dispatchable entries:
  /// whole-model replicas + pipeline groups).
  int replicas = 0;
  /// Simulated devices across the fleet (a pipeline group counts its K
  /// stage devices) — the cost-per-request denominator.
  int devices = 0;
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  std::int64_t deadline_expired = 0;
  std::int64_t failed = 0;
  std::int64_t completed = 0;

  std::int64_t batches = 0;
  std::int64_t size_flushes = 0;
  std::int64_t timeout_flushes = 0;
  double mean_batch_size = 0.0;
  std::int64_t max_queue_depth = 0;

  /// Requests carrying a finite deadline, and how many completed within it.
  std::int64_t slo_tracked = 0;
  std::int64_t slo_met = 0;

  /// End-to-end (arrival -> completion) latency of completed requests.
  LatencyHistogram latency;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  /// Last completion instant, and completed / makespan.
  double makespan = 0.0;
  double throughput = 0.0;
  /// Replica-seconds spent serving (primary + hedge dispatches; a crashed
  /// dispatch is busy until the crash instant).
  double busy_seconds = 0.0;
  /// Device-seconds reserved for serving: each dispatch charges its
  /// backend's reservation window (dispatch -> ready for the next batch)
  /// times the backend's device count. For an all-whole-model fleet this
  /// equals busy_seconds; a pipeline group's drain overlaps the next
  /// batch, so only the stage-0 window is charged across its K devices.
  double device_seconds = 0.0;

  /// Recovery work summed over replicas.
  int transient_retries = 0;
  int reinitializations = 0;

  // --- Fleet self-healing --------------------------------------------------
  /// Replica crashes observed (initial kills + failed restart attempts).
  std::int64_t deaths = 0;
  std::int64_t respawn_attempts = 0;
  std::int64_t respawns = 0;
  /// Replicas permanently lost (dead with the respawn budget spent).
  int replicas_lost = 0;
  /// Batches re-dispatched after their replica died mid-service.
  std::int64_t crash_redispatches = 0;
  std::int64_t hedges_launched = 0;
  std::int64_t hedges_won = 0;
  /// Redundant hedge completions discarded (both primary and hedge
  /// finished; exactly one CompletionRecord survives).
  std::int64_t duplicates_suppressed = 0;
  /// Completed requests served at a non-primary precision (the INT8
  /// degraded pool); reconciles with the served_precision CSV column.
  std::int64_t degraded_served = 0;
  std::int64_t shed_degrade_entries = 0;
  double degraded_seconds = 0.0;
  /// Span of the fleet's health-transition log (first to last transition,
  /// virtual seconds): how long the fleet churned before settling. 0 for a
  /// fault-free run.
  double time_to_recovery = 0.0;

  double reject_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(rejected) /
                              static_cast<double>(offered);
  }
  double slo_attainment() const {
    return slo_tracked == 0 ? 1.0
                            : static_cast<double>(slo_met) /
                                  static_cast<double>(slo_tracked);
  }
  /// Fraction of the fleet's replica-time spent serving: busy replica-
  /// seconds over makespan x replicas. The cascade stage-imbalance signal:
  /// a starved stage-2 pool reads near 0, a saturated stage-1 pool near 1.
  double occupancy() const {
    if (makespan <= 0.0 || replicas <= 0) return 0.0;
    return busy_seconds / (makespan * static_cast<double>(replicas));
  }

  /// Useful work per second: completions inside their deadline over the
  /// makespan (equals throughput when every request has no deadline).
  double goodput() const {
    if (makespan <= 0.0) return 0.0;
    return static_cast<double>(slo_tracked == 0 ? completed : slo_met) /
           makespan;
  }

  /// Fleet cost of one accepted request, in device-seconds — the
  /// datacenter bill divided by useful work. Lower is better; a pipeline
  /// fleet wins this metric only when its bubble + transfer overheads stay
  /// below what whole-model replicas lose to paging/memory pressure.
  double cost_per_request() const {
    return completed == 0 ? 0.0
                          : device_seconds / static_cast<double>(completed);
  }

  /// Human-readable metrics block (the serving analog of render_report).
  std::string to_string() const;
};

struct ServerConfig {
  /// Pool label for multi-model deployments (e.g. the scan cascade's
  /// "screener" and "full" stage fleets). Non-empty labels prefix this
  /// server's profiler counters and counter tracks as "serve.<pool>.*" so
  /// per-pool throughput/occupancy stay distinguishable in one recorder's
  /// chrome trace; empty keeps the classic "serve.*" names.
  std::string pool;
  BatchPolicy batch;
  /// Admission-queue bound (reject-on-full).
  std::size_t queue_capacity = 64;
  /// Whole-model replicas, each with a private device + resilient session.
  /// May be 0 only when extra backends are supplied (mixed/pipeline fleet).
  int replicas = 1;
  /// Precision every replica serves at (unless overridden per replica).
  simgpu::Precision precision = simgpu::Precision::kFp32;
  /// Per-replica precision overrides for mixed fleets (e.g. an int8 fast
  /// path alongside an fp32 reference replica). Empty = all replicas use
  /// `precision`; otherwise the length must equal `replicas`.
  std::vector<simgpu::Precision> replica_precisions;
  simgpu::DeviceSpec device;
  ios::ResilientOptions resilient;
  /// Base transient fault plan; re-armed before every dispatch with a seed
  /// mixed from (plan.seed, dispatch salt). Empty = no transient faults.
  simgpu::FaultPlan faults;
  /// Fleet self-healing layer (health, hedging, shedding, chaos).
  FleetOptions fleet;
};

class Server {
 public:
  /// `graph` must outlive the server. Replicas are constructed and
  /// initialized here (library load + weight upload on each private
  /// device), so serve() starts from a warm fleet. Throws ConfigError for
  /// replicas < 1 or an inconsistent fleet configuration.
  Server(const graph::Graph& graph, ios::Schedule schedule,
         ServerConfig config, profiler::Recorder* recorder = nullptr);

  /// Mixed fleet: `config.replicas` whole-model replicas built as above,
  /// plus `extra` pre-built backends (e.g. shard::PipelineGroup) appended
  /// after them, in order. Fleet entry indices — chaos victim draws,
  /// health transitions, dispatch preference ties — run over the combined
  /// list, whole-model entries first. `config.replicas` may be 0 when
  /// `extra` is non-empty (a pipeline-only fleet); replica_precisions, if
  /// set, still sizes against config.replicas only.
  Server(const graph::Graph& graph, ios::Schedule schedule,
         ServerConfig config, profiler::Recorder* recorder,
         std::vector<std::unique_ptr<Backend>> extra);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Run the trace through the server. `trace` must be arrival-sorted with
  /// strictly increasing ids (generate_trace output qualifies). Callable
  /// once per Server: replica clocks carry serving history.
  ServingReport serve(const std::vector<Request>& trace);

  /// Per-request completion log, sorted by request id (valid after
  /// serve()).
  const std::vector<CompletionRecord>& log() const { return log_; }

  /// Fleet health-transition log, in fire order (valid after serve()).
  const std::vector<HealthTransition>& health_transitions() const;

  /// Canonical byte-stable CSV rendering of a completion log: integral
  /// nanosecond timestamps, no replica column (see CompletionRecord).
  static std::string log_to_csv(const std::vector<CompletionRecord>& log);

 private:
  struct Replica;

  const graph::Graph& graph_;
  ios::Schedule schedule_;
  ServerConfig config_;
  profiler::Recorder* recorder_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<HealthMonitor> monitor_;
  std::vector<CompletionRecord> log_;
  bool served_ = false;
};

}  // namespace dcn::serve
