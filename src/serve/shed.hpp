// Load shedding via precision degradation.
//
// Overload policy with a middle rung between "serve at full quality" and
// "reject": when admission-queue occupancy crosses a high watermark the
// shedder enters degraded mode, and dispatch steers batches to the INT8
// replica pool — trading the (paper-measured) negligible accuracy loss of
// post-training quantization for ~2x service throughput. Occupancy falling
// under the low watermark restores normal routing. Watermark hysteresis
// plus a minimum dwell time prevent flapping at the boundary; rejection at
// admission (BoundedQueue) remains the final backstop.
//
// The shedder is a pure occupancy-driven state machine on the virtual
// clock: same occupancy sequence, same decisions.
#pragma once

#include <cstdint>

namespace dcn::serve {

enum class ShedState { kNormal, kDegraded };

const char* shed_state_name(ShedState state);

struct ShedPolicy {
  bool enabled = false;
  /// Queue occupancy (size / capacity) at or above which shedding engages.
  double degrade_watermark = 0.75;
  /// Occupancy at or below which normal routing restores.
  double restore_watermark = 0.25;
  /// Minimum time in a state before the next switch (virtual seconds).
  double min_dwell = 0.010;
};

class LoadShedder {
 public:
  /// Throws ConfigError for watermarks outside [0, 1], restore >= degrade,
  /// or negative dwell.
  explicit LoadShedder(ShedPolicy policy = {});

  /// Observe queue occupancy in [0, 1] at virtual time `now`. Returns true
  /// when the state switched.
  bool update(double now, double occupancy);

  ShedState state() const { return state_; }
  bool degraded() const { return state_ == ShedState::kDegraded; }

  /// Times the shedder entered degraded mode.
  std::int64_t degrade_entries() const { return degrade_entries_; }
  /// Total virtual seconds spent degraded up to `now`.
  double degraded_seconds(double now) const;

  const ShedPolicy& policy() const { return policy_; }

 private:
  ShedPolicy policy_;
  ShedState state_ = ShedState::kNormal;
  double entered_at_ = 0.0;
  double degraded_accum_ = 0.0;
  std::int64_t degrade_entries_ = 0;
};

}  // namespace dcn::serve
