#include "serve/shed.hpp"

#include <string>

#include "core/error.hpp"

namespace dcn::serve {

const char* shed_state_name(ShedState state) {
  switch (state) {
    case ShedState::kNormal:
      return "normal";
    case ShedState::kDegraded:
      return "degraded";
  }
  return "unknown";
}

LoadShedder::LoadShedder(ShedPolicy policy) : policy_(policy) {
  if (policy.degrade_watermark < 0.0 || policy.degrade_watermark > 1.0 ||
      policy.restore_watermark < 0.0 || policy.restore_watermark > 1.0) {
    throw ConfigError("LoadShedder: watermarks must be in [0, 1]");
  }
  if (policy.restore_watermark >= policy.degrade_watermark) {
    throw ConfigError(
        "LoadShedder: restore_watermark " +
        std::to_string(policy.restore_watermark) +
        " must be below degrade_watermark " +
        std::to_string(policy.degrade_watermark) + " (hysteresis)");
  }
  if (policy.min_dwell < 0.0) {
    throw ConfigError("LoadShedder: min_dwell must be >= 0, got " +
                      std::to_string(policy.min_dwell));
  }
}

bool LoadShedder::update(double now, double occupancy) {
  if (!policy_.enabled) return false;
  if (now - entered_at_ < policy_.min_dwell) return false;
  if (state_ == ShedState::kNormal &&
      occupancy >= policy_.degrade_watermark) {
    state_ = ShedState::kDegraded;
    entered_at_ = now;
    ++degrade_entries_;
    return true;
  }
  if (state_ == ShedState::kDegraded &&
      occupancy <= policy_.restore_watermark) {
    degraded_accum_ += now - entered_at_;
    state_ = ShedState::kNormal;
    entered_at_ = now;
    return true;
  }
  return false;
}

double LoadShedder::degraded_seconds(double now) const {
  double total = degraded_accum_;
  if (state_ == ShedState::kDegraded && now > entered_at_) {
    total += now - entered_at_;
  }
  return total;
}

}  // namespace dcn::serve
