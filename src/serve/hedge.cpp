#include "serve/hedge.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"

namespace dcn::serve {

HedgeController::HedgeController(HedgePolicy policy) : policy_(policy) {
  if (policy.quantile <= 0.0 || policy.quantile >= 1.0) {
    throw ConfigError("HedgeController: quantile must be in (0, 1), got " +
                      std::to_string(policy.quantile));
  }
  if (policy.factor <= 0.0) {
    throw ConfigError("HedgeController: factor must be > 0, got " +
                      std::to_string(policy.factor));
  }
  if (policy.min_delay < 0.0) {
    throw ConfigError("HedgeController: min_delay must be >= 0, got " +
                      std::to_string(policy.min_delay));
  }
  if (policy.min_samples < 1) {
    throw ConfigError("HedgeController: min_samples must be >= 1, got " +
                      std::to_string(policy.min_samples));
  }
}

void HedgeController::observe(double service_seconds) {
  histogram_.add(service_seconds);
}

std::optional<double> HedgeController::delay() const {
  if (!policy_.enabled) return std::nullopt;
  if (histogram_.count() < policy_.min_samples) return std::nullopt;
  return std::max(policy_.min_delay,
                  policy_.factor * histogram_.quantile(policy_.quantile));
}

bool HedgeController::should_hedge(double service_seconds) const {
  const auto hedge_delay = delay();
  return hedge_delay.has_value() && service_seconds > *hedge_delay;
}

}  // namespace dcn::serve
