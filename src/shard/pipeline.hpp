// Microbatch pipeline execution of a partitioned model across K devices.
//
// A PipelineGroup is one serving fleet entry (serve::Backend) spanning K
// simulated devices, one partition stage each, every stage behind its own
// ios::ResilientSession. serve_batch() splits the dispatched batch into
// microbatches and runs the classic fill / steady-state / drain wavefront
// on the virtual clock: stage k starts microbatch m when (a) stage k-1 has
// finished it, (b) its own device is free, and (c) the bounded inter-stage
// queue has room — stage k may run at most `queue_capacity` microbatches
// ahead of stage k+1, the backpressure that keeps a slow stage from
// unboundedly buffering activations.
//
// Consecutive batches overlap into cross-batch steady state: the outcome's
// `ready` instant is stage 0's drain, so the server re-dispatches to the
// group while the later stages are still flushing the previous batch. The
// per-stage device clocks serialize each stage's work, which keeps the
// interleaved wavefront dependency-correct and bounds buffering at each
// stage boundary to one batch of microbatches plus the queue depth. Under
// sustained load the group's throughput is set by its bottleneck stage,
// not by the fill+drain span of an isolated batch.
//
// Contiguous-interval partitioning makes the sequential chain dependency-
// correct: every cross-stage edge flows from a lower stage index to a
// higher one, so "stage k waits for stage k-1" covers all skip edges.
//
// Determinism: serve_batch() is a pure function of (construction state,
// start, batch, the salts armed immediately before the call). arm_faults /
// reseed_backoff additionally mix the stage index into each stage's seed,
// so per-stage fault and jitter streams are mutually independent yet
// reproducible — the pipeline extension of the serving determinism
// contract (completion CSVs stay byte-identical across group counts under
// light load).
//
// Per-stage busy/bubble time is accumulated into StageCounters, and when a
// profiler Recorder is attached every microbatch run is recorded as a
// LaneSpan ("<lane_prefix>/stage<k>" rows in the chrome trace; the gaps in
// a row are that stage's pipeline bubbles).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ios/executor.hpp"
#include "profiler/recorder.hpp"
#include "serve/backend.hpp"
#include "shard/partition.hpp"
#include "simgpu/device.hpp"

namespace dcn::shard {

struct PipelineOptions {
  /// Samples per microbatch (>= 1). Batches smaller than one microbatch
  /// run as a single microbatch.
  std::int64_t microbatch = 8;
  /// Bounded inter-stage queue depth (>= 1): how many microbatches a stage
  /// may run ahead of its successor before blocking.
  int queue_capacity = 2;
  /// Precision every stage serves at (must match the partition's
  /// ios.precision for the schedules to be the ones priced).
  simgpu::Precision precision = simgpu::Precision::kFp32;
  /// Recovery policy for each stage's session.
  ios::ResilientOptions resilient;
  /// Chrome-trace lane prefix for this group's per-stage rows (e.g.
  /// "pipe0"); empty disables lane recording.
  std::string lane_prefix;
};

/// Busy/bubble accounting for one stage, summed over serve_batch calls.
struct StageCounters {
  /// Time the stage's device spent running microbatches.
  double busy_seconds = 0.0;
  /// Idle time inside the stage's active window for each batch (window
  /// open to its last microbatch end): fill skew and backpressure stalls.
  /// Drain time is excluded — under cross-batch steady state the stage is
  /// already serving the next batch then.
  double bubble_seconds = 0.0;
  std::int64_t microbatches = 0;
};

class PipelineGroup : public serve::Backend {
 public:
  /// Takes the partition by value (stage sessions reference the stored
  /// subgraphs). Builds one Device + ResilientSession per stage and warm-
  /// initializes them (clocks reset to zero afterwards, like a whole-model
  /// replica). Throws ConfigError for an empty partition, microbatch < 1,
  /// or queue_capacity < 1.
  PipelineGroup(Partition partition, const simgpu::DeviceSpec& spec,
                PipelineOptions options,
                profiler::Recorder* recorder = nullptr);

  simgpu::Precision precision() const override {
    return options_.precision;
  }
  int device_count() const override {
    return static_cast<int>(stages_.size());
  }
  void arm_faults(const simgpu::FaultPlan& base, std::uint64_t salt) override;
  void reseed_backoff(std::uint64_t backoff_seed,
                      std::uint64_t salt) override;
  serve::BackendOutcome serve_batch(double start,
                                    std::int64_t batch) override;
  double restart(double now) override;
  ios::SessionStats stats() const override;

  const Partition& partition() const { return partition_; }
  const std::vector<StageCounters>& stage_counters() const {
    return counters_;
  }
  /// Aggregate bubble share across stages: bubbles / (busy + bubbles).
  /// 0 when nothing has been served.
  double bubble_fraction() const;

 private:
  struct Stage {
    std::unique_ptr<simgpu::Device> device;
    std::unique_ptr<ios::ResilientSession> session;
  };

  Partition partition_;
  PipelineOptions options_;
  profiler::Recorder* recorder_;
  std::vector<Stage> stages_;
  std::vector<StageCounters> counters_;
};

}  // namespace dcn::shard
