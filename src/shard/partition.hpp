// Automatic pipeline partitioning of an inference graph across K devices.
//
// The partitioner splits the (fused, pass-optimized) graph's device
// operators — in topological order — into K contiguous stages, each small
// enough to live resident on one device, balanced by the simgpu cost
// model. A dynamic program over cut positions minimizes the bottleneck
// stage time: the IOS-optimized compute cost of the stage's subgraph plus
// the PCIe cost of staging every activation edge cut by the stage's input
// boundary (one D2H on the producer's device + one H2D on the consumer's,
// per distinct cut producer). Pipeline throughput is set by the slowest
// stage, so min-max is the right objective.
//
// Cut legality honors fusion: a fused kFusedConvReLU / kFusedLinearReLU is
// a single node and trivially atomic, and on an *unfused* graph a cut is
// never placed between a conv/linear and a ReLU that directly consumes it
// — the pair the optimizer would fuse must land in one stage, or the fused
// and unfused graphs would partition incompatibly.
//
// Each stage is materialized as a standalone subgraph (a kInput node per
// distinct external producer, a kOutput node per activation leaving the
// stage) so a plain ios::InferenceSession prices the stage exactly: its
// built-in H2D input / D2H output copies *are* the PCIe staging of the cut
// activations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/spec.hpp"

namespace dcn::shard {

struct PartitionOptions {
  /// Number of pipeline stages K (one device each). Must satisfy
  /// 1 <= stages <= number of device operators; anything else throws
  /// ConfigError.
  int stages = 2;
  /// IOS options each stage's subgraph schedule is optimized with (batch =
  /// the microbatch size the pipeline will run; precision selects the
  /// kernel variants and the int8 activation widths).
  ios::IosOptions ios;
  /// Per-stage memory budget for weights + activation workspace, bytes.
  /// 0 = the device's DRAM capacity. Intervals that exceed it are
  /// infeasible; if no K-way split fits, partition_graph throws
  /// ConfigError.
  std::int64_t max_stage_bytes = 0;
};

/// One pipeline stage: a contiguous slice of the model on its own device.
struct StagePlan {
  /// Original-graph ids of the device ops in this stage (topo order).
  std::vector<graph::OpId> ops;
  /// Standalone executable subgraph (see file comment).
  graph::Graph subgraph;
  /// IOS-optimized schedule of `subgraph`.
  ios::Schedule schedule;
  /// schedule_cost of the stage at the partition batch/precision.
  double compute_seconds = 0.0;
  /// Activation bytes entering / leaving the stage per sample (cut edges
  /// only; the model input and final output are not cut edges).
  std::int64_t input_bytes = 0;
  std::int64_t output_bytes = 0;
  /// This stage's share of the PCIe staging at the partition batch: one
  /// H2D per distinct cut input producer plus one D2H per cut output —
  /// exactly the copies its InferenceSession pays per run.
  double transfer_seconds = 0.0;
  /// Resident bytes the stage needs: weights + activation workspace.
  std::int64_t resident_bytes = 0;
};

struct Partition {
  std::vector<StagePlan> stages;
  /// max over stages of (compute + transfer-in): the steady-state
  /// per-microbatch interval of the pipeline — its throughput bound.
  double bottleneck_seconds = 0.0;
  /// Sum of every stage's compute (the serial work the pipeline spreads).
  double total_compute_seconds = 0.0;
  /// Sum of every stage's transfer-in cost (the sharding tax).
  double total_transfer_seconds = 0.0;
};

/// Partition `graph` into options.stages pipeline stages for devices of
/// `spec`. Deterministic. Throws ConfigError for an out-of-range stage
/// count or when no legal, memory-feasible K-way split exists.
Partition partition_graph(const graph::Graph& graph,
                          const simgpu::DeviceSpec& spec,
                          const PartitionOptions& options);

}  // namespace dcn::shard
