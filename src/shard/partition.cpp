#include "shard/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/error.hpp"
#include "simgpu/kernels.hpp"

namespace dcn::shard {
namespace {

/// One PCIe copy of `bytes` at the partition batch size.
double copy_seconds(const simgpu::DeviceSpec& spec, std::int64_t bytes,
                    std::int64_t batch) {
  if (bytes <= 0) return 0.0;
  return spec.memcpy_latency +
         static_cast<double>(bytes) * static_cast<double>(batch) /
             spec.pcie_bandwidth;
}

/// Materialize the interval ops[lo..hi] (inclusive, indices into the
/// device-op topo order) as a standalone subgraph and price it.
StagePlan build_stage(const graph::Graph& graph,
                      const std::vector<graph::OpId>& topo, int lo, int hi,
                      const simgpu::DeviceSpec& spec,
                      const PartitionOptions& options) {
  StagePlan stage;
  std::unordered_set<graph::OpId> interior;
  for (int i = lo; i <= hi; ++i) {
    interior.insert(topo[static_cast<std::size_t>(i)]);
    stage.ops.push_back(topo[static_cast<std::size_t>(i)]);
  }

  // External producers map to one subgraph node each: interior device ops
  // keep their kind, constants are replicated (they ship with the weights
  // and cost no per-run transfer), original inputs stay inputs, and a cut
  // activation from an earlier stage becomes a kInput the session's H2D
  // copy prices as the PCIe staging it is.
  std::unordered_map<graph::OpId, graph::OpId> remap;
  const auto map_producer = [&](graph::OpId p) -> graph::OpId {
    const auto it = remap.find(p);
    if (it != remap.end()) return it->second;
    const graph::OpNode& node = graph.node(p);
    graph::OpId mapped = graph::kInvalidOp;
    if (node.kind == graph::OpKind::kConstant) {
      mapped = stage.subgraph.add_op(graph::OpKind::kConstant, node.name,
                                     node.attrs, {}, node.output);
    } else if (node.kind == graph::OpKind::kInput) {
      mapped = stage.subgraph.add_op(graph::OpKind::kInput, node.name, {},
                                     {}, node.output);
    } else {
      stage.input_bytes += node.output.numel() * 4;
      mapped = stage.subgraph.add_op(graph::OpKind::kInput,
                                     "cut_in." + node.name, {}, {},
                                     node.output);
    }
    remap.emplace(p, mapped);
    return mapped;
  };

  for (int i = lo; i <= hi; ++i) {
    const graph::OpNode& node = graph.node(topo[static_cast<std::size_t>(i)]);
    std::vector<graph::OpId> inputs;
    inputs.reserve(node.inputs.size());
    for (graph::OpId p : node.inputs) inputs.push_back(map_producer(p));
    remap[node.id] = stage.subgraph.add_op(node.kind, node.name, node.attrs,
                                           std::move(inputs), node.output);
  }

  // One kOutput per interior op with any consumer outside the interval:
  // either the model's real output (the original kOutput node) or a cut
  // activation the next stage will read — the session's D2H copy prices
  // the producer side of that cut.
  for (int i = lo; i <= hi; ++i) {
    const graph::OpId id = topo[static_cast<std::size_t>(i)];
    const graph::OpNode& node = graph.node(id);
    bool model_output = false;
    bool cut_output = false;
    for (graph::OpId consumer : graph.successors(id)) {
      if (interior.count(consumer) != 0) continue;
      if (graph.node(consumer).kind == graph::OpKind::kOutput) {
        model_output = true;
      } else {
        cut_output = true;
      }
    }
    if (!model_output && !cut_output) continue;
    if (cut_output) stage.output_bytes += node.output.numel() * 4;
    stage.subgraph.add_op(graph::OpKind::kOutput,
                          (cut_output ? "cut_out." : "out.") + node.name, {},
                          {remap.at(id)}, node.output);
  }

  graph::validate_shapes(stage.subgraph);
  stage.schedule = ios::optimize_schedule(stage.subgraph, spec, options.ios);
  stage.compute_seconds =
      ios::schedule_cost(stage.subgraph, spec, stage.schedule,
                         options.ios.batch, options.ios.precision);
  stage.transfer_seconds =
      copy_seconds(spec, stage.input_bytes, options.ios.batch) +
      copy_seconds(spec, stage.output_bytes, options.ios.batch);

  // Same residency the session allocates: full-precision weights plus the
  // ping-pong activation workspace (InferenceSession::initialize).
  std::int64_t max_activation = 0;
  for (const graph::OpNode& node : stage.subgraph.nodes()) {
    max_activation = std::max(max_activation, node.output.numel() * 4);
  }
  stage.resident_bytes =
      static_cast<std::int64_t>(simgpu::total_weight_bytes(stage.subgraph)) +
      2 * max_activation * 64;
  return stage;
}

}  // namespace

Partition partition_graph(const graph::Graph& graph,
                          const simgpu::DeviceSpec& spec,
                          const PartitionOptions& options) {
  std::vector<graph::OpId> topo;
  for (graph::OpId id : graph.topological_order()) {
    if (simgpu::is_device_op(graph.node(id).kind)) topo.push_back(id);
  }
  const int n = static_cast<int>(topo.size());
  const int k = options.stages;
  if (k < 1 || k > n) {
    throw ConfigError("partition_graph: stages must be in [1, " +
                      std::to_string(n) + "] (device ops), got " +
                      std::to_string(k));
  }

  // Cut legality. legal_cut[i] == a stage boundary may fall between topo
  // position i and i+1. A conv/linear and a ReLU that directly consumes it
  // are the fusion pair: they must share a stage (a fused kind is already
  // one node, so this only ever constrains unfused graphs).
  std::vector<int> topo_pos(graph.size(), -1);
  for (int i = 0; i < n; ++i) {
    topo_pos[static_cast<std::size_t>(topo[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<char> legal_cut(static_cast<std::size_t>(n), 1);
  for (graph::OpId id : topo) {
    const graph::OpNode& node = graph.node(id);
    if (node.kind != graph::OpKind::kReLU) continue;
    for (graph::OpId p : node.inputs) {
      const graph::OpKind pk = graph.node(p).kind;
      if (pk != graph::OpKind::kConv2d && pk != graph::OpKind::kLinear) {
        continue;
      }
      const int from = topo_pos[static_cast<std::size_t>(p)];
      const int to = topo_pos[static_cast<std::size_t>(id)];
      for (int c = from; c < to; ++c) {
        legal_cut[static_cast<std::size_t>(c)] = 0;
      }
    }
  }

  // Exact interval costing: every candidate stage is built and priced by
  // the same cost model the executor reproduces. O(n^2) IOS runs on
  // interval subgraphs — fine at model scale (tens of ops).
  const std::int64_t budget =
      options.max_stage_bytes > 0 ? options.max_stage_bytes : spec.dram_bytes;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> interval_cost(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), inf));
  for (int lo = 0; lo < n; ++lo) {
    for (int hi = lo; hi < n; ++hi) {
      const StagePlan stage =
          build_stage(graph, topo, lo, hi, spec, options);
      if (stage.resident_bytes > budget) continue;  // infeasible: stays inf
      interval_cost[static_cast<std::size_t>(lo)]
                   [static_cast<std::size_t>(hi)] =
          stage.compute_seconds + stage.transfer_seconds;
    }
  }

  // DP over cut positions: dp[s][j] = best achievable bottleneck covering
  // topo[0..j] with s+1 stages; min over the last stage's start i of
  // max(dp[s-1][i-1], cost(i..j)).
  std::vector<std::vector<double>> dp(
      static_cast<std::size_t>(k),
      std::vector<double>(static_cast<std::size_t>(n), inf));
  std::vector<std::vector<int>> cut_from(
      static_cast<std::size_t>(k),
      std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int j = 0; j < n; ++j) {
    dp[0][static_cast<std::size_t>(j)] =
        interval_cost[0][static_cast<std::size_t>(j)];
  }
  for (int s = 1; s < k; ++s) {
    for (int j = s; j < n; ++j) {
      for (int i = s; i <= j; ++i) {
        if (legal_cut[static_cast<std::size_t>(i - 1)] == 0) continue;
        const double prev = dp[static_cast<std::size_t>(s - 1)]
                              [static_cast<std::size_t>(i - 1)];
        const double here = interval_cost[static_cast<std::size_t>(i)]
                                         [static_cast<std::size_t>(j)];
        const double bottleneck = std::max(prev, here);
        if (bottleneck < dp[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(j)]) {
          dp[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)] =
              bottleneck;
          cut_from[static_cast<std::size_t>(s)]
                  [static_cast<std::size_t>(j)] = i;
        }
      }
    }
  }
  if (!std::isfinite(
          dp[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(
              n - 1)])) {
    throw ConfigError(
        "partition_graph: no legal memory-feasible " + std::to_string(k) +
        "-way split (per-stage budget " + std::to_string(budget) +
        " bytes over " + std::to_string(n) + " device ops)");
  }

  // Recover the chosen cut positions, then rebuild the chosen stages.
  std::vector<int> starts(static_cast<std::size_t>(k), 0);
  {
    int j = n - 1;
    for (int s = k - 1; s >= 1; --s) {
      const int i = cut_from[static_cast<std::size_t>(s)]
                            [static_cast<std::size_t>(j)];
      DCN_CHECK(i >= 1) << "partition DP lost its parent pointer";
      starts[static_cast<std::size_t>(s)] = i;
      j = i - 1;
    }
  }
  Partition partition;
  partition.stages.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    const int lo = starts[static_cast<std::size_t>(s)];
    const int hi = s + 1 < k ? starts[static_cast<std::size_t>(s + 1)] - 1
                             : n - 1;
    StagePlan stage = build_stage(graph, topo, lo, hi, spec, options);
    partition.bottleneck_seconds =
        std::max(partition.bottleneck_seconds,
                 stage.compute_seconds + stage.transfer_seconds);
    partition.total_compute_seconds += stage.compute_seconds;
    partition.total_transfer_seconds += stage.transfer_seconds;
    partition.stages.push_back(std::move(stage));
  }
  return partition;
}

}  // namespace dcn::shard
