#include "shard/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn::shard {

PipelineGroup::PipelineGroup(Partition partition,
                             const simgpu::DeviceSpec& spec,
                             PipelineOptions options,
                             profiler::Recorder* recorder)
    : partition_(std::move(partition)),
      options_(std::move(options)),
      recorder_(recorder) {
  if (partition_.stages.empty()) {
    throw ConfigError("PipelineGroup: partition has no stages");
  }
  if (options_.microbatch < 1) {
    throw ConfigError("PipelineGroup: microbatch must be >= 1, got " +
                      std::to_string(options_.microbatch));
  }
  if (options_.queue_capacity < 1) {
    throw ConfigError("PipelineGroup: queue_capacity must be >= 1, got " +
                      std::to_string(options_.queue_capacity));
  }
  counters_.resize(partition_.stages.size());
  stages_.reserve(partition_.stages.size());
  for (const StagePlan& plan : partition_.stages) {
    Stage stage;
    stage.device = std::make_unique<simgpu::Device>(spec, recorder_);
    stage.session = std::make_unique<ios::ResilientSession>(
        plan.subgraph, plan.schedule, *stage.device, options_.resilient,
        options_.precision);
    stage.session->initialize();
    // Warm start, exactly like a whole-model replica: the library load and
    // stage-weight upload happen before the serving timeline.
    stage.device->reset_clocks();
    stages_.push_back(std::move(stage));
  }
}

void PipelineGroup::arm_faults(const simgpu::FaultPlan& base,
                               std::uint64_t salt) {
  if (base.empty()) return;
  const std::uint64_t dispatch_seed = mix_seed(base.seed, salt);
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    simgpu::FaultPlan plan = base;
    // One independent stream per stage device, all derived from the same
    // per-dispatch seed — stage k's faults never depend on stage k-1's.
    plan.seed = mix_seed(dispatch_seed, static_cast<std::uint64_t>(k));
    stages_[k].device->set_fault_plan(plan);
  }
}

void PipelineGroup::reseed_backoff(std::uint64_t backoff_seed,
                                   std::uint64_t salt) {
  const std::uint64_t dispatch_seed = mix_seed(backoff_seed, salt);
  for (std::size_t k = 0; k < stages_.size(); ++k) {
    stages_[k].session->reseed_backoff(
        mix_seed(dispatch_seed, static_cast<std::uint64_t>(k)));
  }
}

serve::BackendOutcome PipelineGroup::serve_batch(double start,
                                                 std::int64_t batch) {
  if (batch < 1) {
    throw ConfigError("PipelineGroup::serve_batch: batch must be >= 1, got " +
                      std::to_string(batch));
  }
  const std::size_t num_stages = stages_.size();
  const std::int64_t mb = options_.microbatch;
  const std::size_t num_micro =
      static_cast<std::size_t>((batch + mb - 1) / mb);
  const std::size_t queue = static_cast<std::size_t>(options_.queue_capacity);

  // Wavefront schedule, microbatch-major: when stage k prices microbatch m,
  // stage k-1's end for m and stage k+1's start for m-queue are already
  // known, so every constraint reads completed state.
  std::vector<std::vector<double>> mb_start(
      num_stages, std::vector<double>(num_micro, 0.0));
  std::vector<std::vector<double>> mb_end(
      num_stages, std::vector<double>(num_micro, 0.0));
  std::vector<double> batch_busy(num_stages, 0.0);
  // Stage clocks may still be draining the previous batch (cross-batch
  // steady state): each stage's bubble window opens at the later of the
  // dispatch instant and its own clock, so overlap never counts as idle.
  std::vector<double> window_open(num_stages, start);
  for (std::size_t k = 0; k < num_stages; ++k) {
    window_open[k] = std::max(start, stages_[k].device->host_time());
  }

  serve::BackendOutcome out;
  out.ok = true;
  out.end = start;
  for (std::size_t m = 0; m < num_micro && out.ok; ++m) {
    const std::int64_t size =
        std::min<std::int64_t>(mb, batch - static_cast<std::int64_t>(m) * mb);
    for (std::size_t k = 0; k < num_stages; ++k) {
      Stage& stage = stages_[k];
      double s = k == 0 ? start : mb_end[k - 1][m];
      // Own device still draining the previous microbatch.
      s = std::max(s, stage.device->host_time());
      // Bounded inter-stage queue: at most `queue` microbatches may sit
      // between this stage and its successor, so microbatch m waits until
      // the successor has started m - queue.
      if (k + 1 < num_stages && m >= queue) {
        s = std::max(s, mb_start[k + 1][m - queue]);
      }
      stage.device->advance_host(s - stage.device->host_time());
      const auto result = stage.session->try_run(size);
      const double e = stage.device->host_time();
      mb_start[k][m] = s;
      mb_end[k][m] = e;
      batch_busy[k] += e - s;
      counters_[k].busy_seconds += e - s;
      ++counters_[k].microbatches;
      out.end = std::max(out.end, e);
      if (recorder_ != nullptr && !options_.lane_prefix.empty()) {
        recorder_->record_lane_span(
            options_.lane_prefix + "/stage" + std::to_string(k),
            "mb" + std::to_string(m), s, e - s,
            "microbatch " + std::to_string(m) + " (" + std::to_string(size) +
                " sample(s))");
      }
      if (!result.has_value()) {
        // A stage exhausted its retry budget: the batch is lost as a unit
        // (partial pipelines produce nothing). Remaining microbatches are
        // not scheduled; the failure instant is the outcome's end.
        out.ok = false;
        break;
      }
    }
  }
  // Bubble accounting per stage, over the stage's own active window for
  // this batch (window open -> its last microbatch end): fill skew and
  // backpressure stalls count as bubble; drain time after a stage's last
  // microbatch does not, because under cross-batch steady state the stage
  // is free to start the next batch then.
  for (std::size_t k = 0; k < num_stages; ++k) {
    const double window =
        std::max(0.0, stages_[k].device->host_time() - window_open[k]);
    counters_[k].bubble_seconds += std::max(0.0, window - batch_busy[k]);
  }
  // The group can accept its next dispatch once stage 0 drains: the next
  // batch's wavefront interleaves with this one's drain on the per-stage
  // device clocks, which is what amortizes fill/drain across a burst
  // (each stage boundary buffers at most one batch of microbatches plus
  // the bounded queue).
  out.ready = stages_.front().device->host_time();
  return out;
}

double PipelineGroup::restart(double now) {
  // All stages restart concurrently (each on its own device timeline); the
  // group rejoins when the slowest stage finishes re-initializing.
  double ready = now;
  for (Stage& stage : stages_) {
    stage.device->reset_clocks();
    stage.device->advance_host(now);
    stage.device->set_fault_plan(simgpu::FaultPlan{});
    stage.session->hard_restart();
    ready = std::max(ready, stage.device->host_time());
  }
  return ready;
}

ios::SessionStats PipelineGroup::stats() const {
  ios::SessionStats total;
  for (const Stage& stage : stages_) {
    const ios::SessionStats& s = stage.session->stats();
    total.runs += s.runs;
    total.completed += s.completed;
    total.degraded += s.degraded;
    total.transient_retries += s.transient_retries;
    total.reinitializations += s.reinitializations;
    total.backoff_seconds += s.backoff_seconds;
    if (!s.last_error.empty()) total.last_error = s.last_error;
  }
  return total;
}

double PipelineGroup::bubble_fraction() const {
  double busy = 0.0;
  double bubble = 0.0;
  for (const StageCounters& c : counters_) {
    busy += c.busy_seconds;
    bubble += c.bubble_seconds;
  }
  const double total = busy + bubble;
  return total <= 0.0 ? 0.0 : bubble / total;
}

}  // namespace dcn::shard
