#include "tensor/qgemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/time.hpp"
#include "tensor/kernels/registry.hpp"
#include "tensor/kernels/tuner.hpp"
#include "tensor/workspace.hpp"

namespace dcn {
namespace {

// Largest tunable accumulator row tile (rows of A per pass over B). The
// tuner searches {2, 4, 8}; int32 accumulation is exact, so the choice is
// pure scheduling — it can never change the output.
constexpr std::int64_t kQMaxMr = 8;
// M rows per compute task. Fixed regardless of thread count so the
// decomposition (and hence, trivially, the output) is partition-invariant.
constexpr std::int64_t kQBandRows = 64;

void validate(std::int64_t m, std::int64_t n, std::int64_t k,
              std::int64_t lda, std::int64_t ldb, std::int64_t ldc,
              std::int64_t a_scale_count) {
  DCN_CHECK(m >= 0 && n >= 0 && k >= 0)
      << "qgemm dims " << m << "x" << n << "x" << k;
  DCN_CHECK(lda >= k && ldb >= n && ldc >= n)
      << "qgemm leading dims " << lda << "/" << ldb << "/" << ldc;
  DCN_CHECK(a_scale_count == m || a_scale_count == 1)
      << "qgemm a_scale_count " << a_scale_count << " for m = " << m;
}

inline float apply_epilogue(float x, const float* row_bias, std::int64_t row,
                            bool relu) {
  if (row_bias != nullptr) x += row_bias[row];
  return relu ? std::max(x, 0.0f) : x;
}

// One band of rows [m0, m1): outer-product accumulation so the B panel is
// streamed row-major (contiguous) and each A row is read once per K pass.
// The inner row update acc[j] += av * b[j] is the dispatched SIMD kernel;
// qmr (rows per accumulator tile) is the tuner's scheduling choice.
void qgemm_band(std::int64_t qmr, kernels::QgemmRowFn row_fn, std::int64_t m0,
                std::int64_t m1, std::int64_t n, std::int64_t k,
                const std::int8_t* a, std::int64_t lda, const float* a_scales,
                std::int64_t a_scale_count, const std::uint8_t* b,
                std::int64_t ldb, float b_scale, std::int32_t b_zp, float* c,
                std::int64_t ldc, const QuantEpilogue& epilogue) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  std::int32_t* acc = ws.ints(static_cast<std::size_t>(qmr * n));

  for (std::int64_t r0 = m0; r0 < m1; r0 += qmr) {
    const std::int64_t rows = std::min(qmr, m1 - r0);
    std::fill(acc, acc + rows * n, 0);
    // Row sums of A fold the activation zero point out of the inner loop.
    std::int32_t rowsum[kQMaxMr] = {};
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int8_t* arow = a + (r0 + r) * lda;
      std::int32_t sum = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) sum += arow[kk];
      rowsum[r] = sum;
      std::int32_t* acc_row = acc + r * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int32_t av = arow[kk];
        if (av == 0) continue;
        row_fn(n, av, b + kk * ldb, acc_row);
      }
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      const float scale =
          (a_scale_count == 1 ? a_scales[0] : a_scales[r0 + r]) * b_scale;
      const std::int32_t correction = b_zp * rowsum[r];
      const std::int32_t* acc_row = acc + r * n;
      float* crow = c + (r0 + r) * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] = apply_epilogue(
            scale * static_cast<float>(acc_row[j] - correction),
            epilogue.row_bias, r0 + r, epilogue.relu);
      }
    }
  }
}

// Times one candidate row tile on a serial synthetic band. Like the sgemm
// probe, correctness never depends on this — integer accumulation is exact
// at every tile.
double measure_qgemm(const kernels::KernelVariant& variant,
                     const kernels::TileConfig& cfg, std::int64_t m,
                     std::int64_t n, std::int64_t k) {
  const std::int64_t pm = std::min<std::int64_t>(m, kQBandRows);
  const std::int64_t pn = std::min<std::int64_t>(n, 512);
  const std::int64_t pk = std::min<std::int64_t>(k, 256);
  std::vector<std::int8_t> a(static_cast<std::size_t>(pm * pk));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(pk * pn));
  std::vector<float> c(static_cast<std::size_t>(pm * pn));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(static_cast<std::int64_t>(i % 255) - 127);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(i % 251);
  }
  const float scale = 0.5f;
  WallTimer timer;
  qgemm_band(cfg.mr, variant.qgemm_row, 0, pm, pn, pk, a.data(), pk, &scale,
             1, b.data(), pn, 0.25f, 3, c.data(), pn, QuantEpilogue{});
  return timer.milliseconds();
}

std::int64_t select_row_tile(const kernels::KernelVariant& variant,
                             std::int64_t m, std::int64_t n, std::int64_t k) {
  const kernels::TileConfig cfg = kernels::TileTuner::global().choose(
      variant, 'q', m, n, k, [&](const kernels::TileConfig& c) {
        return measure_qgemm(variant, c, m, n, k);
      });
  return std::clamp<std::int64_t>(cfg.mr, 1, kQMaxMr);
}

}  // namespace

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const float* a_scales,
           std::int64_t a_scale_count, const std::uint8_t* b,
           std::int64_t ldb, const QuantParams& b_params, float* c,
           std::int64_t ldc, const QuantEpilogue& epilogue) {
  validate(m, n, k, lda, ldb, ldc, a_scale_count);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Degenerate reduction: the accumulator is zero everywhere; only the
    // epilogue runs.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        c[i * ldc + j] =
            apply_epilogue(0.0f, epilogue.row_bias, i, epilogue.relu);
      }
    }
    return;
  }
  const kernels::KernelVariant& variant =
      kernels::KernelRegistry::global().active();
  const std::int64_t qmr = select_row_tile(variant, m, n, k);
  const auto bands =
      static_cast<int>((m + kQBandRows - 1) / kQBandRows);
  run_compute_tasks(bands, [&](int band) {
    const std::int64_t m0 = static_cast<std::int64_t>(band) * kQBandRows;
    const std::int64_t m1 = std::min(m, m0 + kQBandRows);
    qgemm_band(qmr, variant.qgemm_row, m0, m1, n, k, a, lda, a_scales,
               a_scale_count, b, ldb, b_params.scale, b_params.zero_point, c,
               ldc, epilogue);
  });
}

void qgemm(const QuantizedWeights& weights, const std::uint8_t* b,
           std::int64_t n, std::int64_t ldb, const QuantParams& b_params,
           float* c, std::int64_t ldc, const QuantEpilogue& epilogue) {
  qgemm(weights.rows, n, weights.cols, weights.data.data(), weights.cols,
        weights.scales.data(),
        static_cast<std::int64_t>(weights.scales.size()), b, ldb, b_params,
        c, ldc, epilogue);
}

void qgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const float* a_scales, std::int64_t a_scale_count,
                     const std::uint8_t* b, std::int64_t ldb,
                     const QuantParams& b_params, float* c, std::int64_t ldc,
                     const QuantEpilogue& epilogue) {
  validate(m, n, k, lda, ldb, ldc, a_scale_count);
  for (std::int64_t i = 0; i < m; ++i) {
    const float scale =
        (a_scale_count == 1 ? a_scales[0] : a_scales[i]) * b_params.scale;
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      std::int64_t asum = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int64_t>(a[i * lda + kk]) *
               static_cast<std::int64_t>(b[kk * ldb + j]);
        asum += a[i * lda + kk];
      }
      const auto corrected = static_cast<std::int32_t>(
          acc - static_cast<std::int64_t>(b_params.zero_point) * asum);
      c[i * ldc + j] =
          apply_epilogue(scale * static_cast<float>(corrected),
                         epilogue.row_bias, i, epilogue.relu);
    }
  }
}

}  // namespace dcn
