#include "tensor/qgemm.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "tensor/workspace.hpp"

namespace dcn {
namespace {

// Rows of A processed per accumulator tile: four int32 accumulator rows of
// typical conv output width fit comfortably in L1/L2 alongside the streamed
// B panel.
constexpr std::int64_t kQMr = 4;
// M rows per compute task. Fixed regardless of thread count so the
// decomposition (and hence, trivially, the output) is partition-invariant.
constexpr std::int64_t kQBandRows = 64;

void validate(std::int64_t m, std::int64_t n, std::int64_t k,
              std::int64_t lda, std::int64_t ldb, std::int64_t ldc,
              std::int64_t a_scale_count) {
  DCN_CHECK(m >= 0 && n >= 0 && k >= 0)
      << "qgemm dims " << m << "x" << n << "x" << k;
  DCN_CHECK(lda >= k && ldb >= n && ldc >= n)
      << "qgemm leading dims " << lda << "/" << ldb << "/" << ldc;
  DCN_CHECK(a_scale_count == m || a_scale_count == 1)
      << "qgemm a_scale_count " << a_scale_count << " for m = " << m;
}

inline float apply_epilogue(float x, const float* row_bias, std::int64_t row,
                            bool relu) {
  if (row_bias != nullptr) x += row_bias[row];
  return relu ? std::max(x, 0.0f) : x;
}

// One band of rows [m0, m1): outer-product accumulation so the B panel is
// streamed row-major (contiguous) and each A row is read once per K pass.
void qgemm_band(std::int64_t m0, std::int64_t m1, std::int64_t n,
                std::int64_t k, const std::int8_t* a, std::int64_t lda,
                const float* a_scales, std::int64_t a_scale_count,
                const std::uint8_t* b, std::int64_t ldb, float b_scale,
                std::int32_t b_zp, float* c, std::int64_t ldc,
                const QuantEpilogue& epilogue) {
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  std::int32_t* acc = ws.ints(static_cast<std::size_t>(kQMr * n));

  for (std::int64_t r0 = m0; r0 < m1; r0 += kQMr) {
    const std::int64_t rows = std::min(kQMr, m1 - r0);
    std::fill(acc, acc + rows * n, 0);
    // Row sums of A fold the activation zero point out of the inner loop.
    std::int32_t rowsum[kQMr] = {0, 0, 0, 0};
    for (std::int64_t r = 0; r < rows; ++r) {
      const std::int8_t* arow = a + (r0 + r) * lda;
      std::int32_t sum = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) sum += arow[kk];
      rowsum[r] = sum;
      std::int32_t* acc_row = acc + r * n;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const std::int32_t av = arow[kk];
        if (av == 0) continue;
        const std::uint8_t* brow = b + kk * ldb;
        for (std::int64_t j = 0; j < n; ++j) {
          acc_row[j] += av * static_cast<std::int32_t>(brow[j]);
        }
      }
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      const float scale =
          (a_scale_count == 1 ? a_scales[0] : a_scales[r0 + r]) * b_scale;
      const std::int32_t correction = b_zp * rowsum[r];
      const std::int32_t* acc_row = acc + r * n;
      float* crow = c + (r0 + r) * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] = apply_epilogue(
            scale * static_cast<float>(acc_row[j] - correction),
            epilogue.row_bias, r0 + r, epilogue.relu);
      }
    }
  }
}

}  // namespace

void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const float* a_scales,
           std::int64_t a_scale_count, const std::uint8_t* b,
           std::int64_t ldb, const QuantParams& b_params, float* c,
           std::int64_t ldc, const QuantEpilogue& epilogue) {
  validate(m, n, k, lda, ldb, ldc, a_scale_count);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Degenerate reduction: the accumulator is zero everywhere; only the
    // epilogue runs.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        c[i * ldc + j] =
            apply_epilogue(0.0f, epilogue.row_bias, i, epilogue.relu);
      }
    }
    return;
  }
  const auto bands =
      static_cast<int>((m + kQBandRows - 1) / kQBandRows);
  run_compute_tasks(bands, [&](int band) {
    const std::int64_t m0 = static_cast<std::int64_t>(band) * kQBandRows;
    const std::int64_t m1 = std::min(m, m0 + kQBandRows);
    qgemm_band(m0, m1, n, k, a, lda, a_scales, a_scale_count, b, ldb,
               b_params.scale, b_params.zero_point, c, ldc, epilogue);
  });
}

void qgemm(const QuantizedWeights& weights, const std::uint8_t* b,
           std::int64_t n, std::int64_t ldb, const QuantParams& b_params,
           float* c, std::int64_t ldc, const QuantEpilogue& epilogue) {
  qgemm(weights.rows, n, weights.cols, weights.data.data(), weights.cols,
        weights.scales.data(),
        static_cast<std::int64_t>(weights.scales.size()), b, ldb, b_params,
        c, ldc, epilogue);
}

void qgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const float* a_scales, std::int64_t a_scale_count,
                     const std::uint8_t* b, std::int64_t ldb,
                     const QuantParams& b_params, float* c, std::int64_t ldc,
                     const QuantEpilogue& epilogue) {
  validate(m, n, k, lda, ldb, ldc, a_scale_count);
  for (std::int64_t i = 0; i < m; ++i) {
    const float scale =
        (a_scale_count == 1 ? a_scales[0] : a_scales[i]) * b_params.scale;
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      std::int64_t asum = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int64_t>(a[i * lda + kk]) *
               static_cast<std::int64_t>(b[kk * ldb + j]);
        asum += a[i * lda + kk];
      }
      const auto corrected = static_cast<std::int32_t>(
          acc - static_cast<std::int64_t>(b_params.zero_point) * asum);
      c[i * ldc + j] =
          apply_epilogue(scale * static_cast<float>(corrected),
                         epilogue.row_bias, i, epilogue.relu);
    }
  }
}

}  // namespace dcn
