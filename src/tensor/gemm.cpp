// Parallel, vectorized blocked SGEMM with fused epilogues.
//
// Structure (GotoBLAS-style): the output C is computed in MC x NC macro
// tiles; op(A)/op(B) panels are packed — alpha folded into the A pack —
// into contiguous, zero-padded micro-tile layouts so the micro kernel
// streams them linearly with the whole accumulator tile in vector
// registers. beta is folded into the first K-block visit of each tile and
// the optional epilogue (bias add / bias + ReLU) into the last, so C is
// touched exactly once per K block with no separate sweeps.
//
// The micro kernel itself is dispatched: the KernelRegistry picks the
// widest SIMD variant the CPU supports (kernels/microkernel.hpp), and the
// TileTuner picks which of the variant's registered MR x NR tiles — and
// which MC/NC macro blocking — runs fastest for this shape class. kBlockK
// stays pinned: it is the one blocking parameter that would change the
// floating-point summation tree. This TU builds with -ffp-contract=off for
// the same reason (see the determinism contract in microkernel.hpp).
//
// Threading: the M (or N, whichever has more micro tiles) dimension is
// split into bands executed on the shared compute pool, each band packing
// into its own thread-local Workspace. C tiles are disjoint across bands
// and every C element accumulates its K blocks in the same order under any
// partition, so results are bit-identical for any thread count, any
// variant, and any tuned tile.
#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/time.hpp"
#include "tensor/kernels/registry.hpp"
#include "tensor/kernels/tuner.hpp"
#include "tensor/workspace.hpp"

namespace dcn {
namespace {

// K-block extent. Pinned (never tuned): every C element must accumulate
// its K contributions in the same grouping for bit-identical results.
constexpr std::int64_t kBlockK = 256;

// Don't spawn a band for less work than this (~100us of compute); small
// GEMMs stay serial where pool latency would dominate.
constexpr double kMinFlopsPerBand = 8.0e6;

// Probe caps for the tuner's measure callback. K is capped at one K block
// (the band loop repeats identically per block, so ranking is unchanged);
// N stays (nearly) full because macro-blocking behavior depends on the
// real row width — capping it made the tuner mispredict wide-N conv
// lowerings; M, which bands make interchangeable, shrinks to fit a flop
// budget that keeps a cold tune of one shape class around 100-300 ms.
constexpr std::int64_t kProbeMaxN = 16384;
constexpr double kProbeFlops = 2.7e8;

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// The per-call kernel selection: which micro kernel runs the inner loops
/// and which macro blocking the band loop walks.
struct Blocking {
  const kernels::SgemmMicroKernel* kernel;
  std::int64_t mc;
  std::int64_t nc;
};

inline float load_a(const float* a, std::int64_t lda, bool trans,
                    std::int64_t row, std::int64_t col) {
  return trans ? a[col * lda + row] : a[row * lda + col];
}

// Pack a mb x kb panel of op(A), pre-scaled by alpha, into contiguous
// mr-row micro tiles (column-major within a tile) with zero-padded tail
// rows.
void pack_a(const float* a, std::int64_t lda, bool trans, float alpha,
            std::int64_t m0, std::int64_t mb, std::int64_t k0, std::int64_t kb,
            std::int64_t mr, float* __restrict packed) {
  for (std::int64_t i = 0; i < mb; i += mr) {
    const std::int64_t ib = std::min(mr, mb - i);
    if (ib == mr && !trans) {
      const float* rows = a + (m0 + i) * lda + k0;
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t ii = 0; ii < mr; ++ii) {
          packed[ii] = alpha * rows[ii * lda + p];
        }
        packed += mr;
      }
    } else if (ib == mr && trans) {
      // op(A) transposed: rows of the packed tile are contiguous in A.
      const float* src = a + k0 * lda + (m0 + i);
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t ii = 0; ii < mr; ++ii) {
          packed[ii] = alpha * src[ii];
        }
        src += lda;
        packed += mr;
      }
    } else {
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t ii = 0; ii < mr; ++ii) {
          *packed++ =
              ii < ib ? alpha * load_a(a, lda, trans, m0 + i + ii, k0 + p)
                      : 0.0f;
        }
      }
    }
  }
}

inline float load_b(const float* b, std::int64_t ldb, bool trans,
                    std::int64_t row, std::int64_t col) {
  return trans ? b[col * ldb + row] : b[row * ldb + col];
}

// Pack a kb x nb panel of op(B) into contiguous nr-column micro tiles with
// zero-padded tail columns.
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t k0,
            std::int64_t kb, std::int64_t n0, std::int64_t nb,
            std::int64_t nr, float* __restrict packed) {
  for (std::int64_t j = 0; j < nb; j += nr) {
    const std::int64_t jb = std::min(nr, nb - j);
    if (jb == nr && !trans) {
      const float* src = b + k0 * ldb + n0 + j;
      for (std::int64_t p = 0; p < kb; ++p) {
        std::memcpy(packed, src, static_cast<std::size_t>(nr) * sizeof(float));
        src += ldb;
        packed += nr;
      }
    } else {
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t jj = 0; jj < nr; ++jj) {
          *packed++ =
              jj < jb ? load_b(b, ldb, trans, k0 + p, n0 + j + jj) : 0.0f;
        }
      }
    }
  }
}

// Merge the accumulator (row-major, stride nr) into C with the
// beta/epilogue semantics of the K-block position: the first K block folds
// beta in (never reading C when beta == 0, so uninitialized output memory
// is safely overwritten), middle blocks accumulate, and the last block
// applies the fused epilogue while the tile is still hot. row_bias/col_bias
// are pre-offset to the tile.
void store_tile(float* __restrict c, std::int64_t ldc,
                const float* __restrict acc, std::int64_t nr, std::int64_t ib,
                std::int64_t jb, bool first, float beta,
                const GemmEpilogue* ep, const float* __restrict row_bias,
                const float* __restrict col_bias) {
  if (jb == nr && !ep) {
    if (!first) {  // interior K block: plain accumulate
      for (std::int64_t ii = 0; ii < ib; ++ii) {
        float* __restrict crow = c + ii * ldc;
        const float* __restrict arow = acc + ii * nr;
        for (std::int64_t jj = 0; jj < nr; ++jj) crow[jj] += arow[jj];
      }
      return;
    }
    if (beta == 0.0f) {  // first K block of a fresh output
      for (std::int64_t ii = 0; ii < ib; ++ii) {
        std::memcpy(c + ii * ldc, acc + ii * nr,
                    static_cast<std::size_t>(nr) * sizeof(float));
      }
      return;
    }
  }
  if (jb == nr && ep && first && beta == 0.0f) {
    // The layers' hot path: single K block, fresh output, fused epilogue.
    const bool relu = ep->relu;
    for (std::int64_t ii = 0; ii < ib; ++ii) {
      float* __restrict crow = c + ii * ldc;
      const float* __restrict arow = acc + ii * nr;
      const float rb = row_bias ? row_bias[ii] : 0.0f;
      if (col_bias) {
        for (std::int64_t jj = 0; jj < nr; ++jj) {
          float v = arow[jj] + rb + col_bias[jj];
          crow[jj] = relu && v < 0.0f ? 0.0f : v;
        }
      } else {
        for (std::int64_t jj = 0; jj < nr; ++jj) {
          float v = arow[jj] + rb;
          crow[jj] = relu && v < 0.0f ? 0.0f : v;
        }
      }
    }
    return;
  }
  // Generic path: edge tiles and the rarer beta/epilogue combinations.
  for (std::int64_t ii = 0; ii < ib; ++ii) {
    float* crow = c + ii * ldc;
    const float* arow = acc + ii * nr;
    for (std::int64_t jj = 0; jj < jb; ++jj) {
      float v = arow[jj];
      if (!first) {
        v += crow[jj];
      } else if (beta != 0.0f) {
        v += beta * crow[jj];
      }
      if (ep) {
        if (row_bias) v += row_bias[ii];
        if (col_bias) v += col_bias[jj];
        if (ep->relu && v < 0.0f) v = 0.0f;
      }
      crow[jj] = v;
    }
  }
}

struct GemmArgs {
  bool trans_a;
  bool trans_b;
  std::int64_t m, n, k;
  float alpha;
  const float* a;
  std::int64_t lda;
  const float* b;
  std::int64_t ldb;
  float beta;
  float* c;
  std::int64_t ldc;
  const GemmEpilogue* epilogue;  // nullptr when empty
};

// Compute C rows [m_lo, m_hi) x cols [n_lo, n_hi); pack buffers come from
// the executing thread's workspace so bands share no mutable state.
void gemm_band(const GemmArgs& g, const Blocking& blk, std::int64_t m_lo,
               std::int64_t m_hi, std::int64_t n_lo, std::int64_t n_hi) {
  const std::int64_t mr = blk.kernel->mr;
  const std::int64_t nr = blk.kernel->nr;
  const kernels::SgemmMicroFn micro = blk.kernel->fn;
  Workspace& ws = Workspace::tls();
  Workspace::Scope scope(ws);
  const std::int64_t mc = std::min(blk.mc, m_hi - m_lo);
  const std::int64_t nc = std::min(blk.nc, n_hi - n_lo);
  const std::int64_t kc = std::min(kBlockK, g.k);
  float* packed_a =
      ws.floats(static_cast<std::size_t>(ceil_div(mc, mr) * mr * kc));
  float* packed_b =
      ws.floats(static_cast<std::size_t>(ceil_div(nc, nr) * nr * kc));
  alignas(64) float acc[kernels::kMaxMr * kernels::kMaxNr];
  for (std::int64_t k0 = 0; k0 < g.k; k0 += kc) {
    const std::int64_t kb = std::min(kc, g.k - k0);
    const bool first = k0 == 0;
    const GemmEpilogue* ep = (k0 + kb == g.k) ? g.epilogue : nullptr;
    for (std::int64_t n0 = n_lo; n0 < n_hi; n0 += nc) {
      const std::int64_t nb = std::min(nc, n_hi - n0);
      pack_b(g.b, g.ldb, g.trans_b, k0, kb, n0, nb, nr, packed_b);
      for (std::int64_t m0 = m_lo; m0 < m_hi; m0 += mc) {
        const std::int64_t mb = std::min(mc, m_hi - m0);
        pack_a(g.a, g.lda, g.trans_a, g.alpha, m0, mb, k0, kb, mr, packed_a);
        for (std::int64_t j = 0; j < nb; j += nr) {
          const std::int64_t jb = std::min(nr, nb - j);
          const float* pb = packed_b + (j / nr) * kb * nr;
          for (std::int64_t i = 0; i < mb; i += mr) {
            const std::int64_t ib = std::min(mr, mb - i);
            const float* pa = packed_a + (i / mr) * kb * mr;
            micro(kb, pa, pb, acc);
            const GemmEpilogue* tile_ep = ep;
            const float* row_bias =
                tile_ep && tile_ep->row_bias ? tile_ep->row_bias + m0 + i
                                             : nullptr;
            const float* col_bias =
                tile_ep && tile_ep->col_bias ? tile_ep->col_bias + n0 + j
                                             : nullptr;
            store_tile(g.c + (m0 + i) * g.ldc + (n0 + j), g.ldc, acc, nr, ib,
                       jb, first, g.beta, tile_ep, row_bias, col_bias);
          }
        }
      }
    }
  }
}

// beta-scale + epilogue sweep for the degenerate k == 0 / alpha == 0 cases
// where no K block ever visits the tiles.
void scale_epilogue_sweep(const GemmArgs& g) {
  for (std::int64_t i = 0; i < g.m; ++i) {
    float* row = g.c + i * g.ldc;
    const float rb =
        g.epilogue && g.epilogue->row_bias ? g.epilogue->row_bias[i] : 0.0f;
    for (std::int64_t j = 0; j < g.n; ++j) {
      float v = g.beta == 0.0f ? 0.0f : g.beta * row[j];
      if (g.epilogue) {
        v += rb;
        if (g.epilogue->col_bias) v += g.epilogue->col_bias[j];
        if (g.epilogue->relu && v < 0.0f) v = 0.0f;
      }
      row[j] = v;
    }
  }
}

// Times one candidate on a serial, class-representative synthetic problem.
// Correctness never depends on this measurement — every candidate is
// bit-identical — so noise can only cost speed.
double measure_candidate(const kernels::KernelVariant& variant,
                         const kernels::TileConfig& cfg, std::int64_t m,
                         std::int64_t n, std::int64_t k) {
  const kernels::SgemmMicroKernel* kern = variant.find_sgemm(cfg.mr, cfg.nr);
  if (kern == nullptr) return 1.0e30;
  const std::int64_t pk = std::min(k, kBlockK);
  const std::int64_t pn = std::min(n, kProbeMaxN);
  const std::int64_t budget_rows = static_cast<std::int64_t>(
      kProbeFlops /
      (2.0 * static_cast<double>(pn) * static_cast<double>(pk)));
  const std::int64_t pm = std::min(
      m, std::max<std::int64_t>(2 * kernels::kMaxMr, budget_rows));
  std::vector<float> a(static_cast<std::size_t>(pm * pk));
  std::vector<float> b(static_cast<std::size_t>(pk * pn));
  std::vector<float> c(static_cast<std::size_t>(pm * pn));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i % 13) * 0.25f - 1.5f;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>(i % 7) * 0.5f - 1.75f;
  }
  GemmArgs g{false,    false, pm,   pn,   pk,       1.0f,  a.data(),
             pk,       b.data(), pn, 0.0f, c.data(), pn,    nullptr};
  const Blocking blk{kern, cfg.mc, cfg.nc};
  // Small problems repeat inside the timed window until it covers the full
  // flop budget: sub-millisecond samples are mostly timer/scheduling
  // jitter, and a mis-ranked near-tie shows up as a pinned "tuned" tile
  // that loses to the default.
  const double flops =
      2.0 * static_cast<double>(pm) * static_cast<double>(pn) *
      static_cast<double>(pk);
  const int iters =
      static_cast<int>(std::max(1.0, std::min(64.0, kProbeFlops / flops)));
  WallTimer timer;
  for (int it = 0; it < iters; ++it) gemm_band(g, blk, 0, pm, 0, pn);
  return timer.milliseconds() / iters;
}

// Pick the micro kernel and macro blocking for this call: active registry
// variant, tuned tile for the shape class (memoized; see tuner.hpp).
Blocking select_blocking(std::int64_t m, std::int64_t n, std::int64_t k) {
  const kernels::KernelVariant& variant =
      kernels::KernelRegistry::global().active();
  const kernels::TileConfig cfg = kernels::TileTuner::global().choose(
      variant, 'f', m, n, k, [&](const kernels::TileConfig& c) {
        return measure_candidate(variant, c, m, n, k);
      });
  const kernels::SgemmMicroKernel* kern = variant.find_sgemm(cfg.mr, cfg.nr);
  if (kern == nullptr) kern = &variant.default_sgemm();
  return Blocking{kern, std::max(cfg.mc, kern->mr), std::max(cfg.nc, kern->nr)};
}

}  // namespace

void sgemm_ex(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const float* a, std::int64_t lda,
              const float* b, std::int64_t ldb, float beta, float* c,
              std::int64_t ldc, const GemmEpilogue& epilogue) {
  DCN_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm dims " << m << 'x' << n
                                        << 'x' << k;
  if (m == 0 || n == 0) return;

  GemmArgs args{trans_a, trans_b, m,    n,   k, alpha, a,
                lda,     b,       ldb,  beta, c, ldc,   nullptr};
  if (!epilogue.empty()) args.epilogue = &epilogue;

  if (k == 0 || alpha == 0.0f) {
    scale_epilogue_sweep(args);
    return;
  }

  const Blocking blk = select_blocking(m, n, k);

  int bands = 1;
  const int threads = compute_threads();
  if (threads > 1 && !in_compute_worker()) {
    const double flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(k);
    bands = static_cast<int>(std::min<double>(
        threads, std::max(1.0, flops / kMinFlopsPerBand)));
  }
  if (bands <= 1) {
    gemm_band(args, blk, 0, m, 0, n);
    return;
  }
  // Split whichever dimension has more micro tiles so bands stay wide
  // enough to amortize their packing.
  const std::int64_t tiles_m = ceil_div(m, blk.kernel->mr);
  const std::int64_t tiles_n = ceil_div(n, blk.kernel->nr);
  if (tiles_m >= tiles_n) {
    const std::int64_t rows =
        ceil_div(ceil_div(m, static_cast<std::int64_t>(bands)),
                 blk.kernel->mr) *
        blk.kernel->mr;
    const int actual = static_cast<int>(ceil_div(m, rows));
    run_compute_tasks(actual, [&](int t) {
      const std::int64_t lo = static_cast<std::int64_t>(t) * rows;
      gemm_band(args, blk, lo, std::min(m, lo + rows), 0, n);
    });
  } else {
    const std::int64_t cols =
        ceil_div(ceil_div(n, static_cast<std::int64_t>(bands)),
                 blk.kernel->nr) *
        blk.kernel->nr;
    const int actual = static_cast<int>(ceil_div(n, cols));
    run_compute_tasks(actual, [&](int t) {
      const std::int64_t lo = static_cast<std::int64_t>(t) * cols;
      gemm_band(args, blk, 0, m, lo, std::min(n, lo + cols));
    });
  }
}

void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc) {
  sgemm_ex(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
           GemmEpilogue{});
}

void matmul(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, const float* a, const float* b, float* c) {
  const std::int64_t lda = trans_a ? m : k;
  const std::int64_t ldb = trans_b ? k : n;
  sgemm(trans_a, trans_b, m, n, k, 1.0f, a, lda, b, ldb, 0.0f, c, n);
}

void sgemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, float alpha,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float beta, float* c,
                     std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[i * ldc + j] = static_cast<float>(alpha * acc) +
                       beta * c[i * ldc + j];
    }
  }
}

}  // namespace dcn
