// Post-training quantization primitives: float <-> int8 conversion.
//
// Convention (gemmlowp/ONNX-style, documented in DESIGN.md "Quantization
// model"): activations are asymmetric uint8 with a per-tensor affine map
//   real = scale * (q - zero_point),   q in [0, 255],
// chosen so that 0.0 is exactly representable (padding zeros and ReLU
// outputs quantize without bias error). Weights are symmetric int8 with
// zero point 0 and either one scale per output channel (per-row of the
// GEMM's left operand — the default, matching TensorRT/FBGEMM) or a single
// per-tensor scale:
//   real = scale_c * q,   q in [-127, 127]  (-128 is never produced).
#pragma once

#include <cstdint>
#include <vector>

namespace dcn {

/// Per-tensor affine quantization parameters for uint8 activations.
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;

  /// real -> nearest representable uint8.
  std::uint8_t quantize(float x) const;
  /// uint8 -> real.
  float dequantize(std::uint8_t q) const {
    return scale * (static_cast<float>(q) -
                    static_cast<float>(zero_point));
  }
};

/// Affine uint8 parameters covering [min, max]. The range is widened to
/// include 0 and the zero point is nudged to an exact integer, so 0.0
/// round-trips exactly. Degenerate ranges (min == max == 0) yield
/// scale = 1, zero_point = 0.
QuantParams choose_quant_params(float min_value, float max_value);

/// Elementwise float -> uint8 (round-to-nearest, saturating).
void quantize_u8(const float* src, std::int64_t n, const QuantParams& params,
                 std::uint8_t* dst);

/// Elementwise uint8 -> float.
void dequantize_u8(const std::uint8_t* src, std::int64_t n,
                   const QuantParams& params, float* dst);

/// Symmetric int8 scale for values in [-max_abs, max_abs]: max_abs / 127
/// (1 when max_abs == 0, so zeros stay zeros).
float symmetric_scale(float max_abs);

/// Elementwise float -> int8 with a symmetric scale (round-to-nearest,
/// saturating to [-127, 127]).
void quantize_s8(const float* src, std::int64_t n, float scale,
                 std::int8_t* dst);

/// A weight matrix quantized to symmetric int8, one scale per row (per
/// output channel) or a single broadcast scale. Rows are the GEMM's M
/// dimension: conv filters reshaped to [out_channels, in_c*k*k], linear
/// weights as stored [out_features, in_features].
struct QuantizedWeights {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int8_t> data;  // [rows, cols] row-major
  std::vector<float> scales;      // size rows (per-channel) or 1 (per-tensor)

  bool per_channel() const {
    return scales.size() == static_cast<std::size_t>(rows);
  }
};

/// Quantize a [rows, cols] float matrix with one symmetric scale per row.
QuantizedWeights quantize_weights_per_channel(const float* w,
                                              std::int64_t rows,
                                              std::int64_t cols);

/// Quantize a [rows, cols] float matrix with a single symmetric scale.
QuantizedWeights quantize_weights_per_tensor(const float* w,
                                             std::int64_t rows,
                                             std::int64_t cols);

}  // namespace dcn
