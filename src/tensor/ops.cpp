#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dcn {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  DCN_CHECK(a.shape() == b.shape())
      << op << " shape mismatch " << a.shape().to_string() << " vs "
      << b.shape().to_string();
}

}  // namespace

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "add");
  check_same_shape(a, out, "add/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out(a.shape());
  add(a, b, out);
  return out;
}

void sub(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "sub");
  check_same_shape(a, out, "sub/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out(a.shape());
  sub(a, b, out);
  return out;
}

void mul(const Tensor& a, const Tensor& b, Tensor& out) {
  check_same_shape(a, b, "mul");
  check_same_shape(a, out, "mul/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out(a.shape());
  mul(a, b, out);
  return out;
}

void scale(const Tensor& a, float scalar, Tensor& out) {
  check_same_shape(a, out, "scale/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] * scalar;
}

Tensor scale(const Tensor& a, float scalar) {
  Tensor out(a.shape());
  scale(a, scalar, out);
  return out;
}

void axpy(float alpha, const Tensor& b, Tensor& a) {
  check_same_shape(a, b, "axpy");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) a[i] += alpha * b[i];
}

void relu(const Tensor& a, Tensor& out) {
  check_same_shape(a, out, "relu/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

Tensor relu(const Tensor& a) {
  Tensor out(a.shape());
  relu(a, out);
  return out;
}

void relu_backward(const Tensor& a, const Tensor& grad, Tensor& out) {
  check_same_shape(a, grad, "relu_backward");
  check_same_shape(a, out, "relu_backward/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a[i] > 0.0f ? grad[i] : 0.0f;
}

void sigmoid(const Tensor& a, Tensor& out) {
  check_same_shape(a, out, "sigmoid/out");
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const float x = a[i];
    // Evaluate through exp(-|x|) to avoid overflow for large |x|.
    if (x >= 0.0f) {
      const float e = std::exp(-x);
      out[i] = 1.0f / (1.0f + e);
    } else {
      const float e = std::exp(x);
      out[i] = e / (1.0f + e);
    }
  }
}

Tensor sigmoid(const Tensor& a) {
  Tensor out(a.shape());
  sigmoid(a, out);
  return out;
}

void softmax_rows(const Tensor& logits, Tensor& out) {
  DCN_CHECK(logits.rank() == 2) << "softmax_rows expects rank 2, got "
                                << logits.shape().to_string();
  check_same_shape(logits, out, "softmax/out");
  const std::int64_t rows = logits.dim(0);
  const std::int64_t cols = logits.dim(1);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = in[0];
    for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t c = 0; c < cols; ++c) o[c] *= inv;
  }
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out(logits.shape());
  softmax_rows(logits, out);
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot");
  double acc = 0.0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double norm2(const Tensor& a) { return std::sqrt(dot(a, a)); }

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "max_abs_diff");
  float mx = 0.0f;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, std::abs(a[i] - b[i]));
  }
  return mx;
}

void clamp(Tensor& a, float lo, float hi) {
  DCN_CHECK(lo <= hi) << "clamp range";
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) a[i] = std::clamp(a[i], lo, hi);
}

}  // namespace dcn
