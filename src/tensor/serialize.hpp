// Binary tensor (de)serialization.
//
// Format: magic "DCNT", u32 version, u32 rank, i64 dims[rank], f32 data.
// Little-endian (the library targets x86-64/aarch64 Linux). Used to persist
// trained model checkpoints and dataset caches between bench runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dcn {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Save/load a named collection (e.g. model parameters) to a single file.
void save_tensors(const std::string& path,
                  const std::vector<std::pair<std::string, Tensor>>& tensors);
std::vector<std::pair<std::string, Tensor>> load_tensors(
    const std::string& path);

}  // namespace dcn
