#include "tensor/workspace.hpp"

#include <algorithm>
#include <new>

#include "core/error.hpp"

namespace dcn {
namespace {

constexpr std::size_t kAlign = Workspace::kAlignment;
constexpr std::size_t kMinBlockFloats = 1 << 14;  // 64 KiB

// Round allocations to a multiple of the alignment so consecutive
// allocations from one block all stay 64-byte aligned.
std::size_t round_up(std::size_t n) {
  const std::size_t unit = kAlign / sizeof(float);
  return (n + unit - 1) / unit * unit;
}

}  // namespace

void Workspace::AlignedDeleter::operator()(float* p) const {
  ::operator delete[](p, std::align_val_t{kAlign});
}

Workspace& Workspace::tls() {
  thread_local Workspace ws;
  return ws;
}

Workspace::Scope::Scope(Workspace& ws) : ws_(ws) {
  block_ = ws_.cursor_;
  used_ = ws_.blocks_.empty() ? 0 : ws_.blocks_[ws_.cursor_].used;
  ++ws_.depth_;
}

Workspace::Scope::~Scope() {
  --ws_.depth_;
  ws_.restore(block_, used_);
}

float* Workspace::floats(std::size_t n) {
  DCN_CHECK(depth_ > 0) << "Workspace::floats outside a Scope";
  n = round_up(std::max<std::size_t>(n, 1));
  // Advance through existing blocks until one fits the request.
  while (cursor_ < blocks_.size()) {
    Block& b = blocks_[cursor_];
    if (b.used + n <= b.size) {
      float* p = b.data.get() + b.used;
      b.used += n;
      return p;
    }
    if (cursor_ + 1 == blocks_.size()) break;
    ++cursor_;
  }
  // Grow: geometric in total capacity so repeated growth is amortized.
  Block block;
  block.size = std::max({n, kMinBlockFloats, capacity()});
  block.data.reset(static_cast<float*>(
      ::operator new[](block.size * sizeof(float), std::align_val_t{kAlign})));
  block.used = n;
  blocks_.push_back(std::move(block));
  cursor_ = blocks_.size() - 1;
  return blocks_.back().data.get() + blocks_.back().used - n;
}

std::uint8_t* Workspace::bytes(std::size_t n) {
  // Backed by float storage: one float holds four bytes and the arena's
  // 64-byte alignment carries over. The buffer is only ever accessed
  // through the returned pointer, so no aliasing hazard arises.
  return reinterpret_cast<std::uint8_t*>(
      floats((n + sizeof(float) - 1) / sizeof(float)));
}

std::int32_t* Workspace::ints(std::size_t n) {
  static_assert(sizeof(std::int32_t) == sizeof(float));
  return reinterpret_cast<std::int32_t*>(floats(n));
}

void Workspace::restore(std::size_t block, std::size_t used) {
  for (std::size_t i = block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  if (block < blocks_.size()) blocks_[block].used = used;
  cursor_ = std::min(block, blocks_.empty() ? 0 : blocks_.size() - 1);
  // At the outermost scope no pointers remain live: collapse fragmented
  // blocks into one sized to the high-water mark so future passes are
  // contiguous.
  if (depth_ == 0 && blocks_.size() > 1) {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    blocks_.clear();
    Block merged;
    merged.size = total;
    merged.data.reset(static_cast<float*>(::operator new[](
        total * sizeof(float), std::align_val_t{kAlign})));
    blocks_.push_back(std::move(merged));
    cursor_ = 0;
  }
}

std::size_t Workspace::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace dcn
