// Dense float32 tensor with value semantics.
//
// The whole pipeline (training, inference numerics, synthetic rasters) works
// in float32, matching the paper's PyTorch setup. Storage is a contiguous
// row-major buffer; views are not implemented — reshaping copies metadata
// only (the buffer is shared through the value's own vector when moved).
// Value semantics keep ownership reasoning trivial per the Core Guidelines;
// kernels take spans/pointers, never copies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"

namespace dcn {

class Rng;

/// Contiguous row-major float32 tensor.
class Tensor {
 public:
  /// Empty scalar-shaped tensor holding one zero.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting the given data; data.size() must equal shape.numel().
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  std::size_t rank() const { return shape_.rank(); }
  std::int64_t dim(std::size_t axis) const { return shape_.dim(axis); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Flat element access with bounds check in debug builds.
  float& operator[](std::int64_t i);
  float operator[](std::int64_t i) const;

  /// Multi-dimensional access (rank-checked).
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// In-place metadata reshape; new shape must preserve numel.
  void reshape(Shape new_shape);

  /// Copy with a different shape (numel must match).
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Fill with N(mean, stddev) draws.
  void fill_normal(Rng& rng, float mean, float stddev);
  /// Fill with U[lo, hi) draws.
  void fill_uniform(Rng& rng, float lo, float hi);

  /// Human-readable summary: shape plus first elements.
  std::string to_string(std::int64_t max_elems = 8) const;

 private:
  std::int64_t flat_index(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Convenience factories.
Tensor zeros(Shape shape);
Tensor ones(Shape shape);
Tensor full(Shape shape, float value);
Tensor arange(std::int64_t n);  // [0, 1, ..., n-1] as a rank-1 tensor

}  // namespace dcn
