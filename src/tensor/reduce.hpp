// Reductions over tensors.
#pragma once

#include <cstdint>
#include <utility>

#include "tensor/tensor.hpp"

namespace dcn {

/// Sum of all elements (accumulated in double).
double sum(const Tensor& a);

/// Arithmetic mean of all elements.
double mean(const Tensor& a);

/// Maximum element value.
float max_value(const Tensor& a);

/// Minimum element value.
float min_value(const Tensor& a);

/// (max value, flat index of the first maximum).
std::pair<float, std::int64_t> argmax(const Tensor& a);

/// Per-row sums of a rank-2 tensor into a rank-1 tensor of length rows.
Tensor row_sums(const Tensor& a);

/// Per-column sums of a rank-2 tensor into a rank-1 tensor of length cols.
Tensor col_sums(const Tensor& a);

}  // namespace dcn
