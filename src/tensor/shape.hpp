// Tensor shapes.
//
// Shapes are small value types (up to 6 dims inline would be possible, but a
// vector keeps the code simple; shapes are never on hot paths — indexing
// goes through precomputed extents in the kernels).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace dcn {

/// Dimension extents of a tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t axis) const;
  std::int64_t operator[](std::size_t axis) const { return dim(axis); }

  /// Total number of elements (1 for scalars).
  std::int64_t numel() const;

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides (innermost stride 1).
  std::vector<std::int64_t> strides() const;

  /// "[2, 4, 100, 100]"
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace dcn
