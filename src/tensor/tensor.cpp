#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace dcn {

Tensor::Tensor() : shape_(), data_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  DCN_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel())
      << "data size " << data_.size() << " != shape numel " << shape_.numel();
}

float& Tensor::operator[](std::int64_t i) {
  DCN_DCHECK(i >= 0 && i < numel()) << "flat index " << i;
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::operator[](std::int64_t i) const {
  DCN_DCHECK(i >= 0 && i < numel()) << "flat index " << i;
  return data_[static_cast<std::size_t>(i)];
}

std::int64_t Tensor::flat_index(std::initializer_list<std::int64_t> idx) const {
  DCN_CHECK(idx.size() == shape_.rank())
      << "index rank " << idx.size() << " != tensor rank " << shape_.rank();
  std::int64_t flat = 0;
  std::size_t axis = 0;
  for (std::int64_t i : idx) {
    DCN_DCHECK(i >= 0 && i < shape_.dim(axis))
        << "index " << i << " out of range on axis " << axis;
    flat = flat * shape_.dim(axis) + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[static_cast<std::size_t>(flat_index(idx))];
}

void Tensor::reshape(Shape new_shape) {
  DCN_CHECK(new_shape.numel() == numel())
      << "reshape " << shape_.to_string() << " -> " << new_shape.to_string();
  shape_ = std::move(new_shape);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_.to_string() << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
Tensor full(Shape shape, float value) { return Tensor(std::move(shape), value); }

Tensor arange(std::int64_t n) {
  Tensor t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

}  // namespace dcn
