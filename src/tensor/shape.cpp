#include "tensor/shape.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dcn {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (auto d : dims_) DCN_CHECK(d >= 0) << "negative dimension " << d;
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (auto d : dims_) DCN_CHECK(d >= 0) << "negative dimension " << d;
}

std::int64_t Shape::dim(std::size_t axis) const {
  DCN_CHECK(axis < dims_.size())
      << "axis " << axis << " out of range for rank " << dims_.size();
  return dims_[axis];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size());
  std::int64_t acc = 1;
  for (std::size_t i = dims_.size(); i-- > 0;) {
    s[i] = acc;
    acc *= dims_[i];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace dcn
