// The pre-threading scalar blocked SGEMM, frozen as a baseline.
//
// This is the engine exactly as it shipped before the parallel + vectorized
// rewrite in gemm.cpp: single-threaded, 4x8 scalar register tile, per-call
// std::vector pack buffers. It lives in its own translation unit and is
// deliberately excluded from the DCN_NATIVE_KERNELS tuned-flags list so
// bench_micro_gemm measures the new engine against what the repo actually
// ran before, not against the old code rebuilt with better flags.
#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"

namespace dcn {
namespace {

constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;
constexpr std::int64_t kTileM = 4;
constexpr std::int64_t kTileN = 8;

inline float load_a(const float* a, std::int64_t lda, bool trans,
                    std::int64_t row, std::int64_t col) {
  return trans ? a[col * lda + row] : a[row * lda + col];
}

void pack_a(const float* a, std::int64_t lda, bool trans, float alpha,
            std::int64_t m0, std::int64_t mb, std::int64_t k0, std::int64_t kb,
            float* packed) {
  for (std::int64_t i = 0; i < mb; i += kTileM) {
    const std::int64_t ib = std::min(kTileM, mb - i);
    for (std::int64_t p = 0; p < kb; ++p) {
      for (std::int64_t ii = 0; ii < kTileM; ++ii) {
        *packed++ =
            ii < ib ? alpha * load_a(a, lda, trans, m0 + i + ii, k0 + p)
                    : 0.0f;
      }
    }
  }
}

inline float load_b(const float* b, std::int64_t ldb, bool trans,
                    std::int64_t row, std::int64_t col) {
  return trans ? b[col * ldb + row] : b[row * ldb + col];
}

void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t k0,
            std::int64_t kb, std::int64_t n0, std::int64_t nb, float* packed) {
  for (std::int64_t j = 0; j < nb; j += kTileN) {
    const std::int64_t jb = std::min(kTileN, nb - j);
    for (std::int64_t p = 0; p < kb; ++p) {
      for (std::int64_t jj = 0; jj < kTileN; ++jj) {
        *packed++ = jj < jb ? load_b(b, ldb, trans, k0 + p, n0 + j + jj) : 0.0f;
      }
    }
  }
}

void micro_kernel(std::int64_t kb, const float* pa, const float* pb,
                  float* c, std::int64_t ldc, std::int64_t ib,
                  std::int64_t jb) {
  float acc[kTileM][kTileN] = {};
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* a_col = pa + p * kTileM;
    const float* b_row = pb + p * kTileN;
    for (std::int64_t ii = 0; ii < kTileM; ++ii) {
      const float av = a_col[ii];
      for (std::int64_t jj = 0; jj < kTileN; ++jj) {
        acc[ii][jj] += av * b_row[jj];
      }
    }
  }
  for (std::int64_t ii = 0; ii < ib; ++ii) {
    for (std::int64_t jj = 0; jj < jb; ++jj) {
      c[ii * ldc + jj] += acc[ii][jj];
    }
  }
}

}  // namespace

void sgemm_blocked_scalar(bool trans_a, bool trans_b, std::int64_t m,
                          std::int64_t n, std::int64_t k, float alpha,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, float beta, float* c,
                          std::int64_t ldc) {
  DCN_CHECK(m >= 0 && n >= 0 && k >= 0) << "gemm dims " << m << 'x' << n
                                        << 'x' << k;
  if (m == 0 || n == 0) return;

  if (beta == 0.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  const std::int64_t mc = std::min(kBlockM, m);
  const std::int64_t nc = std::min(kBlockN, n);
  const std::int64_t kc = std::min(kBlockK, k);
  std::vector<float> packed_a(
      static_cast<std::size_t>(((mc + kTileM - 1) / kTileM) * kTileM * kc));
  std::vector<float> packed_b(
      static_cast<std::size_t>(((nc + kTileN - 1) / kTileN) * kTileN * kc));
  for (std::int64_t k0 = 0; k0 < k; k0 += kc) {
    const std::int64_t kb = std::min(kc, k - k0);
    for (std::int64_t n0 = 0; n0 < n; n0 += nc) {
      const std::int64_t nb = std::min(nc, n - n0);
      pack_b(b, ldb, trans_b, k0, kb, n0, nb, packed_b.data());
      for (std::int64_t m0 = 0; m0 < m; m0 += mc) {
        const std::int64_t mb = std::min(mc, m - m0);
        pack_a(a, lda, trans_a, alpha, m0, mb, k0, kb, packed_a.data());
        for (std::int64_t j = 0; j < nb; j += kTileN) {
          const std::int64_t jb = std::min(kTileN, nb - j);
          const float* pb = packed_b.data() + (j / kTileN) * kb * kTileN;
          for (std::int64_t i = 0; i < mb; i += kTileM) {
            const std::int64_t ib = std::min(kTileM, mb - i);
            const float* pa = packed_a.data() + (i / kTileM) * kb * kTileM;
            micro_kernel(kb, pa, pb, c + (m0 + i) * ldc + (n0 + j), ldc, ib,
                         jb);
          }
        }
      }
    }
  }
}

}  // namespace dcn
