// Quantized int8 GEMM with a fused dequantize+bias+ReLU epilogue.
//
// The INT8 inference analog of sgemm_ex: symmetric int8 weights on the left
// (per-output-channel scales), affine uint8 activations on the right,
// int32 accumulation, and a float output produced by a fused epilogue —
// the quantized counterpart of the GemmEpilogue seam, so no separate
// dequant/bias/activation sweeps ever touch the output.
//
//   C[m,n] = epi( a_scales[m] * b.scale *
//                 ( sum_k A[m,k] * B[k,n]  -  b.zero_point * rowsum_A[m] ) )
//
// The zero-point correction uses the algebraic identity
// sum_k A[m,k]*(B[k,n]-zp) = sum_k A[m,k]*B[k,n] - zp*sum_k A[m,k], so the
// inner loop is a plain u8*s8 dot product. Accumulation is exact integer
// arithmetic and every C element is produced by one float expression, so
// results are bit-identical across thread counts and runs by construction;
// the M-band decomposition is fixed regardless of the partition (DESIGN.md
// "Tensor-engine threading model").
#pragma once

#include <cstdint>

#include "tensor/quantize.hpp"

namespace dcn {

/// Fused into the dequantizing store of each output element.
struct QuantEpilogue {
  /// If set, row_bias[i] (float) is added to every element of row i — a
  /// conv layer's per-output-channel bias, a linear layer's per-feature
  /// bias over the transposed [out, batch] output.
  const float* row_bias = nullptr;
  /// Apply max(x, 0) after the bias.
  bool relu = false;

  bool empty() const { return !row_bias && !relu; }
};

/// C(float)[m x n] = epilogue(dequant(A_s8[m x k] * (B_u8[k x n] - zp))).
/// A is row-major with leading dimension lda and symmetric scales
/// (`a_scale_count` == m for per-channel, 1 for per-tensor); B is row-major
/// uint8 with per-tensor affine `b_params`; C is row-major float.
void qgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const float* a_scales,
           std::int64_t a_scale_count, const std::uint8_t* b,
           std::int64_t ldb, const QuantParams& b_params, float* c,
           std::int64_t ldc, const QuantEpilogue& epilogue = {});

/// Convenience: quantized weight matrix as the left operand.
void qgemm(const QuantizedWeights& weights, const std::uint8_t* b,
           std::int64_t n, std::int64_t ldb, const QuantParams& b_params,
           float* c, std::int64_t ldc, const QuantEpilogue& epilogue = {});

/// Reference triple loop implementing the identical contract; tests compare
/// the blocked kernel against it bit-for-bit.
void qgemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const float* a_scales, std::int64_t a_scale_count,
                     const std::uint8_t* b, std::int64_t ldb,
                     const QuantParams& b_params, float* c, std::int64_t ldc,
                     const QuantEpilogue& epilogue = {});

}  // namespace dcn
