// Elementwise and shape-preserving tensor operations.
//
// These are the building blocks the nn layers compose; each op has a
// documented aliasing contract (out may alias an input unless stated
// otherwise) and checks shapes at the boundary.
#pragma once

#include "tensor/tensor.hpp"

namespace dcn {

/// out = a + b (same shape). out may alias a or b.
void add(const Tensor& a, const Tensor& b, Tensor& out);
Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b.
void sub(const Tensor& a, const Tensor& b, Tensor& out);
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a * b elementwise (Hadamard).
void mul(const Tensor& a, const Tensor& b, Tensor& out);
Tensor mul(const Tensor& a, const Tensor& b);

/// out = a * scalar.
void scale(const Tensor& a, float scalar, Tensor& out);
Tensor scale(const Tensor& a, float scalar);

/// a += alpha * b (axpy). Shapes must match.
void axpy(float alpha, const Tensor& b, Tensor& a);

/// out = max(a, 0).
void relu(const Tensor& a, Tensor& out);
Tensor relu(const Tensor& a);

/// out = grad where a > 0 else 0 (ReLU backward wrt pre-activation a).
void relu_backward(const Tensor& a, const Tensor& grad, Tensor& out);

/// Numerically stable logistic sigmoid.
void sigmoid(const Tensor& a, Tensor& out);
Tensor sigmoid(const Tensor& a);

/// Row-wise softmax over the last axis of a rank-2 tensor.
void softmax_rows(const Tensor& logits, Tensor& out);
Tensor softmax_rows(const Tensor& logits);

/// Dot product of flattened tensors.
double dot(const Tensor& a, const Tensor& b);

/// L2 norm of the flattened tensor.
double norm2(const Tensor& a);

/// Max absolute difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Clamp every element into [lo, hi].
void clamp(Tensor& a, float lo, float hi);

}  // namespace dcn
