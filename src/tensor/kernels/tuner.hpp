// Autotuner for micro-tile and cache-blocking parameters.
//
// Mirrors the IOS schedule cache's design (ios/schedule_cache.hpp): a
// content-addressed memo keyed canonically — here by (kernel variant,
// precision, shape class) — with hit/miss counters surfaced through the
// profiler report. Two storage tiers: an in-process map for the hot path
// and an on-disk cache (one file per key under DCN_TUNER_CACHE, default
// ~/.cache/dcn-tuner) so winners survive across processes; a corrupted or
// stale entry is detected by re-checking the full key and the variant's
// tile table, counted as tuner_cache.corrupt, and silently re-tuned.
//
// What is searched: the micro tile (MR x NR) from the active variant's
// registered set, and the macro blocking (MC, NC). What is NOT searched:
// KC — the K-block extent is the one blocking parameter that changes the
// floating-point summation tree, so it stays pinned (gemm.cpp kBlockK) to
// keep every tuned configuration bit-identical to every other. Cold tune
// and warm replay therefore produce byte-identical results by
// construction; the cached winner only has to reproduce the *speed*.
//
// Shape classes bucket each GEMM dimension to a power of two (exact below
// 16), so e.g. every conv lowering of one layer across NAS trials shares
// an entry — the same redundancy-collapsing move as the schedule cache.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tensor/kernels/microkernel.hpp"

namespace dcn::kernels {

/// One tuning decision. kc is carried for the cache format but is always
/// the driver's pinned K block (see file comment).
struct TileConfig {
  std::int64_t mr = 4;
  std::int64_t nr = 8;
  std::int64_t mc = 128;
  std::int64_t nc = 256;
  std::int64_t kc = 256;
};

struct TunerStats {
  std::int64_t memo_hits = 0;
  std::int64_t memo_misses = 0;
  std::int64_t disk_hits = 0;
  std::int64_t disk_misses = 0;
  std::int64_t corrupt_entries = 0;
  std::int64_t tuned = 0;
};

/// Measures one candidate on a class-representative problem; returns
/// milliseconds (lower is better). Provided by the GEMM driver so the
/// tuner stays free of packing/blocking knowledge.
using MeasureFn = std::function<double(const TileConfig&)>;

class TileTuner {
 public:
  /// The process-wide tuner all kernel drivers consult.
  static TileTuner& global();

  /// The winning config for (variant, precision, shape class of m/n/k).
  /// precision is 'f' (fp32 sgemm) or 'q' (int8 qgemm). Consults memo,
  /// then disk, then tunes with `measure` over the candidate set (the
  /// variant's default tile is always candidate #0, so the winner is never
  /// measured slower than the default). When tuning is disabled the
  /// variant default is returned and nothing is counted or stored.
  TileConfig choose(const KernelVariant& variant, char precision,
                    std::int64_t m, std::int64_t n, std::int64_t k,
                    const MeasureFn& measure);

  /// Canonical content key (exposed for tests and cache inspection).
  static std::string cache_key(const KernelVariant& variant, char precision,
                               std::int64_t m, std::int64_t n,
                               std::int64_t k);
  /// Path of the on-disk entry for a key (inside the active cache dir).
  std::string entry_path(const std::string& key);

  /// Enabled by default unless DCN_TUNER=off in the environment.
  void set_enabled(bool enabled);
  bool enabled();

  /// Override the cache directory ("" = resolve from environment again).
  /// Clears the in-memory memo so the new directory takes effect.
  void set_cache_dir(const std::string& dir);
  std::string cache_dir();

  /// Drop the in-memory memo (disk entries survive) — lets tests replay
  /// the warm-from-disk path inside one process.
  void clear_memory();

  TunerStats stats();
  void reset_stats();

  /// Force every sgemm selection to (mr, nr) when the active variant
  /// registers that tile (bench tile sweeps); 0,0 clears.
  void force_tile(std::int64_t mr, std::int64_t nr);

  /// RAII tile force for benches/tests.
  class ScopedForcedTile {
   public:
    ScopedForcedTile(std::int64_t mr, std::int64_t nr);
    ~ScopedForcedTile();
    ScopedForcedTile(const ScopedForcedTile&) = delete;
    ScopedForcedTile& operator=(const ScopedForcedTile&) = delete;
  };

 private:
  TileTuner();
  TileConfig tune(const KernelVariant& variant, char precision,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  const MeasureFn& measure);
  bool load_entry(const std::string& key, const KernelVariant& variant,
                  char precision, TileConfig* config);
  void store_entry(const std::string& key, const TileConfig& config,
                   double best_ms);

  std::mutex mutex_;
  bool enabled_ = true;
  std::string dir_;
  std::unordered_map<std::string, TileConfig> memo_;
  TunerStats stats_;
  std::int64_t forced_mr_ = 0;
  std::int64_t forced_nr_ = 0;
};

}  // namespace dcn::kernels
