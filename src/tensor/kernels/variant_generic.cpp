// The generic kernel registrant: plain scalar loops, compiled with the
// project's generic flags only (never -march=native — see
// src/tensor/CMakeLists.txt). This is the portable floor every other
// variant is memcmp-checked against, and the honest baseline
// DCN_KERNEL_VARIANT=generic forces for A/B runs: bench_micro_gemm used to
// conflate DCN_NATIVE_KERNELS=OFF with "scalar baseline"; now the baseline
// is an explicit registrant that survives any build-flag combination.
#include "tensor/kernels/variant_impl.hpp"

namespace dcn::kernels {
namespace {

void quantize_u8_scalar(const float* src, std::int64_t n, float inv_scale,
                        float zp, std::uint8_t* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = src[i] * inv_scale + zp;
    const auto r = static_cast<std::int32_t>(std::lround(v));
    dst[i] = static_cast<std::uint8_t>(std::clamp(r, 0, 255));
  }
}

void quantize_s8_scalar(const float* src, std::int64_t n, float inv_scale,
                        std::int8_t* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    const auto r = static_cast<std::int32_t>(std::lround(src[i] * inv_scale));
    dst[i] = static_cast<std::int8_t>(std::clamp(r, -127, 127));
  }
}

void dequantize_u8_scalar(const std::uint8_t* src, std::int64_t n,
                          float scale, float zp, float* dst) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = scale * (static_cast<float>(src[i]) - zp);
  }
}

float reduce_max_scalar(const float* src, std::int64_t n) {
  float best = src[0];
  for (std::int64_t i = 1; i < n; ++i) {
    best = src[i] > best ? src[i] : best;
  }
  return best;
}

float reduce_min_scalar(const float* src, std::int64_t n) {
  float best = src[0];
  for (std::int64_t i = 1; i < n; ++i) {
    best = src[i] < best ? src[i] : best;
  }
  return best;
}

}  // namespace

KernelVariant make_generic_variant() {
  KernelVariant v;
  v.name = "generic";
  v.priority = 0;
  v.supported = nullptr;  // always runnable
  // 4x8 first: the historical scalar register tile is the no-tuner default.
  v.sgemm = {
      {4, 8, &sgemm_micro_scalar<4, 8>},
      {8, 8, &sgemm_micro_scalar<8, 8>},
      {4, 16, &sgemm_micro_scalar<4, 16>},
      {8, 16, &sgemm_micro_scalar<8, 16>},
  };
  v.qgemm_row = &qgemm_row_scalar;
  v.accumulate = &accumulate_scalar;
  v.quantize_u8 = &quantize_u8_scalar;
  v.quantize_s8 = &quantize_s8_scalar;
  v.dequantize_u8 = &dequantize_u8_scalar;
  v.reduce_max = &reduce_max_scalar;
  v.reduce_min = &reduce_min_scalar;
  return v;
}

}  // namespace dcn::kernels
