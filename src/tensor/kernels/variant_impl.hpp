// Shared kernel templates instantiated by each variant translation unit.
//
// Every kernel here is written with GCC/Clang generic vector extensions
// (vector_size types), so one template serves every ISA: the including TU's
// compile flags (-msse4.1 / -mavx2 / -mavx512f) decide the instructions.
// The lane width W is a template parameter; lanes always hold distinct
// output elements, so the per-element operation sequence — and therefore
// the output bits — is identical at every width (see microkernel.hpp).
//
// This header must only be included from variant_*.cpp files, which are
// all compiled with -ffp-contract=off: `acc += a * b` must stay a multiply
// followed by an add on every ISA (AVX-512 has embedded FMA forms the
// compiler would otherwise contract into).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/kernels/microkernel.hpp"

namespace dcn::kernels {

// Lane-width-specific vector types. GCC ignores a vector_size whose extent
// depends on a template parameter (the typedef silently collapses to the
// scalar), so the widths are enumerated as explicit specializations with
// literal sizes; the kernel templates below pull their types from V<W>.
// aligned(4)/aligned(1) keeps loads alignment-tolerant — packed panels only
// guarantee element alignment at tile edges.
template <int W>
struct V;
template <>
struct V<4> {
  typedef float vf __attribute__((vector_size(16), may_alias, aligned(4)));
  typedef std::int32_t vi
      __attribute__((vector_size(16), may_alias, aligned(4)));
  typedef std::uint8_t vb
      __attribute__((vector_size(4), may_alias, aligned(1)));
};
template <>
struct V<8> {
  typedef float vf __attribute__((vector_size(32), may_alias, aligned(4)));
  typedef std::int32_t vi
      __attribute__((vector_size(32), may_alias, aligned(4)));
  typedef std::uint8_t vb
      __attribute__((vector_size(8), may_alias, aligned(1)));
};
template <>
struct V<16> {
  typedef float vf __attribute__((vector_size(64), may_alias, aligned(4)));
  typedef std::int32_t vi
      __attribute__((vector_size(64), may_alias, aligned(4)));
  typedef std::uint8_t vb
      __attribute__((vector_size(16), may_alias, aligned(1)));
};

// ---------------------------------------------------------------- SGEMM ---

/// Scalar micro kernel with constexpr trip counts (the generic variant and
/// tail widths). acc stride is NR.
template <int MR, int NR>
void sgemm_micro_scalar(std::int64_t kb, const float* __restrict pa,
                        const float* __restrict pb, float* __restrict acc) {
  float c[MR][NR] = {};
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* a_col = pa + p * MR;
    const float* b_row = pb + p * NR;
    for (int i = 0; i < MR; ++i) {
      const float av = a_col[i];
      for (int j = 0; j < NR; ++j) c[i][j] += av * b_row[j];
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NR; ++j) acc[i * NR + j] = c[i][j];
  }
}

/// Vector micro kernel: MR x NR accumulator held as MR x (NR/W) vectors of
/// W lanes. Loads are through an alignment-4 vector typedef, so packed
/// panels need only float alignment (the Workspace hands out 64-byte
/// aligned panels anyway).
template <int MR, int NR, int W>
void sgemm_micro_vec(std::int64_t kb, const float* __restrict pa,
                     const float* __restrict pb, float* __restrict acc) {
  static_assert(NR % W == 0, "tile width must be a multiple of the lanes");
  typedef typename V<W>::vf vf;
  constexpr int NV = NR / W;
  vf c[MR][NV] = {};
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* a_col = pa + p * MR;
    const float* b_row = pb + p * NR;
    vf b[NV];
    for (int j = 0; j < NV; ++j) {
      b[j] = *reinterpret_cast<const vf*>(b_row + j * W);
    }
    for (int i = 0; i < MR; ++i) {
      const float av = a_col[i];  // broadcast against each b vector
      for (int j = 0; j < NV; ++j) c[i][j] += av * b[j];
    }
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NV; ++j) {
      *reinterpret_cast<vf*>(acc + i * NR + j * W) = c[i][j];
    }
  }
}

// ---------------------------------------------------------------- qgemm ---

/// acc[j] += av * b[j], widening u8 -> s32 per lane. Integer arithmetic is
/// exact, so any width is bit-identical to the scalar loop.
template <int W>
void qgemm_row_vec(std::int64_t n, std::int32_t av, const std::uint8_t* b,
                   std::int32_t* acc) {
  typedef typename V<W>::vi vi;
  typedef typename V<W>::vb vb;
  std::int64_t j = 0;
  for (; j + W <= n; j += W) {
    const vb bytes = *reinterpret_cast<const vb*>(b + j);
    const vi wide = __builtin_convertvector(bytes, vi);
    vi* out = reinterpret_cast<vi*>(acc + j);
    *out += av * wide;
  }
  for (; j < n; ++j) acc[j] += av * static_cast<std::int32_t>(b[j]);
}

inline void qgemm_row_scalar(std::int64_t n, std::int32_t av,
                             const std::uint8_t* b, std::int32_t* acc) {
  for (std::int64_t j = 0; j < n; ++j) {
    acc[j] += av * static_cast<std::int32_t>(b[j]);
  }
}

// ----------------------------------------------------------- accumulate ---

template <int W>
void accumulate_vec(std::int64_t n, const float* __restrict src,
                    float* __restrict dst) {
  typedef typename V<W>::vf vf;
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    vf* d = reinterpret_cast<vf*>(dst + i);
    *d += *reinterpret_cast<const vf*>(src + i);
  }
  for (; i < n; ++i) dst[i] += src[i];
}

inline void accumulate_scalar(std::int64_t n, const float* __restrict src,
                              float* __restrict dst) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

// ------------------------------------------------------------- quantize ---

/// Round-to-nearest, ties away from zero, exactly matching std::lround for
/// every |v| < 2^30 (the scalar path's well-defined domain):
///   t = trunc(v); r = t + trunc(2 * (v - t))
/// v - t is exact (Sterbenz when |v| >= 1, trivially when t == 0), 2*frac
/// is exact, and trunc of it is -1/0/+1 — precisely the ties-away carry.
/// The naive trunc(v + 0.5) is NOT equivalent: adding 0.5 can round across
/// the integer boundary (e.g. v = 0.99999997f - 0.5f).
template <int W>
struct RoundAway {
  typedef typename V<W>::vf vf;
  typedef typename V<W>::vi vi;
  static vi round(vf v) {
    // Pre-clamp keeps the float->int conversions defined; any |v| this
    // large saturates the final u8/s8 clamp identically either way.
    const vf lim = vf{} + 1073741824.0f;  // 2^30
    v = v > lim ? lim : v;
    v = v < -lim ? -lim : v;
    const vi t = __builtin_convertvector(v, vi);
    const vf tf = __builtin_convertvector(t, vf);
    const vf frac2 = (v - tf) + (v - tf);
    return t + __builtin_convertvector(frac2, vi);
  }
};

template <int W>
void quantize_u8_vec(const float* src, std::int64_t n, float inv_scale,
                     float zp, std::uint8_t* dst) {
  using R = RoundAway<W>;
  typedef typename R::vf vf;
  typedef typename R::vi vi;
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    vf v = *reinterpret_cast<const vf*>(src + i);
    v = v * inv_scale + zp;
    vi r = R::round(v);
    r = r < 0 ? vi{} : r;
    r = r > 255 ? vi{} + 255 : r;
    for (int l = 0; l < W; ++l) dst[i + l] = static_cast<std::uint8_t>(r[l]);
  }
  for (; i < n; ++i) {
    const float v = src[i] * inv_scale + zp;
    const auto r = static_cast<std::int32_t>(std::lround(v));
    dst[i] = static_cast<std::uint8_t>(std::clamp(r, 0, 255));
  }
}

template <int W>
void quantize_s8_vec(const float* src, std::int64_t n, float inv_scale,
                     std::int8_t* dst) {
  using R = RoundAway<W>;
  typedef typename R::vf vf;
  typedef typename R::vi vi;
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    vf v = *reinterpret_cast<const vf*>(src + i);
    v = v * inv_scale;
    vi r = R::round(v);
    r = r < -127 ? vi{} - 127 : r;
    r = r > 127 ? vi{} + 127 : r;
    for (int l = 0; l < W; ++l) dst[i + l] = static_cast<std::int8_t>(r[l]);
  }
  for (; i < n; ++i) {
    const auto r = static_cast<std::int32_t>(std::lround(src[i] * inv_scale));
    dst[i] = static_cast<std::int8_t>(std::clamp(r, -127, 127));
  }
}

template <int W>
void dequantize_u8_vec(const std::uint8_t* src, std::int64_t n, float scale,
                       float zp, float* dst) {
  typedef typename V<W>::vf vf;
  typedef typename V<W>::vi vi;
  typedef typename V<W>::vb vb;
  std::int64_t i = 0;
  for (; i + W <= n; i += W) {
    const vb bytes = *reinterpret_cast<const vb*>(src + i);
    const vf v = __builtin_convertvector(
        __builtin_convertvector(bytes, vi), vf);
    *reinterpret_cast<vf*>(dst + i) = scale * (v - zp);
  }
  for (; i < n; ++i) {
    dst[i] = scale * (static_cast<float>(src[i]) - zp);
  }
}

// --------------------------------------------------------------- reduce ---

/// max over n floats with the scalar loop's NaN behavior (NaN never
/// replaces the running value). Seeding every lane with src[0] makes the
/// result independent of how elements land in lanes: max is an exact
/// selection, so any grouping yields the same value.
template <int W, bool kMax>
float reduce_minmax_vec(const float* src, std::int64_t n) {
  typedef typename V<W>::vf vf;
  float best = src[0];
  std::int64_t i = 1;
  if (n - 1 >= 2 * W) {
    vf acc = vf{} + best;
    for (; i + W <= n; i += W) {
      const vf v = *reinterpret_cast<const vf*>(src + i);
      acc = kMax ? (v > acc ? v : acc) : (v < acc ? v : acc);
    }
    for (int l = 0; l < W; ++l) {
      best = kMax ? (acc[l] > best ? acc[l] : best)
                  : (acc[l] < best ? acc[l] : best);
    }
  }
  for (; i < n; ++i) {
    best = kMax ? (src[i] > best ? src[i] : best)
                : (src[i] < best ? src[i] : best);
  }
  return best;
}

}  // namespace dcn::kernels
