// 128-bit (SSE4.1-class) kernel variant. Compiled with -msse4.1; runnable
// whenever cpuid reports sse4.1 (every x86-64 CPU since ~2008). Four lanes
// per vector: micro tiles keep the accumulator within the 16 xmm registers.
#include "core/cpuinfo.hpp"
#include "tensor/kernels/variant_impl.hpp"

namespace dcn::kernels {
namespace {

bool sse41_supported() { return cpu_features().sse41; }

}  // namespace

KernelVariant make_sse41_variant() {
  KernelVariant v;
  v.name = "sse41";
  v.priority = 10;
  v.supported = &sse41_supported;
  constexpr int W = 4;
  // 4x16 default: 16 xmm accumulators — at the register limit, but the
  // four b-row vectors are reloaded per step so spills stay off the hot
  // accumulators in practice; the tuner decides per shape anyway.
  v.sgemm = {
      {4, 16, &sgemm_micro_vec<4, 16, W>},
      {4, 8, &sgemm_micro_vec<4, 8, W>},
      {8, 8, &sgemm_micro_vec<8, 8, W>},
      {6, 16, &sgemm_micro_vec<6, 16, W>},
  };
  v.qgemm_row = &qgemm_row_vec<W>;
  v.accumulate = &accumulate_vec<W>;
  v.quantize_u8 = &quantize_u8_vec<W>;
  v.quantize_s8 = &quantize_s8_vec<W>;
  v.dequantize_u8 = &dequantize_u8_vec<W>;
  v.reduce_max = &reduce_minmax_vec<W, true>;
  v.reduce_min = &reduce_minmax_vec<W, false>;
  return v;
}

}  // namespace dcn::kernels
