#include "tensor/kernels/registry.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "core/error.hpp"
#include "core/logging.hpp"

namespace dcn::kernels {
namespace {

// Selection changes (force/reselect) are test/bench-time operations, but
// active() is read from every kernel call on every thread: publish the
// pointer through an atomic so a force in a test harness thread is never a
// data race against a kernel thread reading it.
std::atomic<const KernelVariant*>& active_slot() {
  static std::atomic<const KernelVariant*> slot{nullptr};
  return slot;
}

std::mutex& mutate_mutex() {
  static std::mutex m;
  return m;
}

bool runnable(const KernelVariant& v) {
  return v.supported == nullptr || v.supported();
}

}  // namespace

KernelRegistry::KernelRegistry() {
  variants_.push_back(make_generic_variant());
#ifdef DCN_KERNEL_HAVE_SSE41
  variants_.push_back(make_sse41_variant());
#endif
#ifdef DCN_KERNEL_HAVE_AVX2
  variants_.push_back(make_avx2_variant());
#endif
#ifdef DCN_KERNEL_HAVE_AVX512
  variants_.push_back(make_avx512_variant());
#endif
  for (const KernelVariant& v : variants_) {
    DCN_CHECK(!v.sgemm.empty()) << "variant " << v.name << " has no sgemm";
    for (const SgemmMicroKernel& k : v.sgemm) {
      DCN_CHECK(k.mr >= 1 && k.mr <= kMaxMr && k.nr >= 1 && k.nr <= kMaxNr)
          << "variant " << v.name << " tile " << k.mr << 'x' << k.nr;
    }
  }
  const KernelVariant* env = select_from_env();
  active_slot().store(env ? env : select_auto(), std::memory_order_release);
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

const KernelVariant& KernelRegistry::active() {
  return *active_slot().load(std::memory_order_acquire);
}

const KernelVariant* KernelRegistry::select_auto() const {
  const KernelVariant* best = &variants_.front();
  for (const KernelVariant& v : variants_) {
    if (runnable(v) && v.priority > best->priority) best = &v;
  }
  return best;
}

const KernelVariant* KernelRegistry::select_from_env() const {
  const char* name = std::getenv("DCN_KERNEL_VARIANT");
  if (name == nullptr || *name == '\0') return nullptr;
  for (const KernelVariant& v : variants_) {
    if (v.name == name) {
      if (runnable(v)) return &v;
      DCN_LOG_WARN << "DCN_KERNEL_VARIANT=" << name
                   << " is not supported on this CPU; using auto selection";
      return nullptr;
    }
  }
  DCN_LOG_WARN << "DCN_KERNEL_VARIANT=" << name
               << " is not compiled in; using auto selection";
  return nullptr;
}

std::vector<std::string> KernelRegistry::variant_names() {
  std::vector<std::string> names;
  names.reserve(variants_.size());
  for (const KernelVariant& v : variants_) names.push_back(v.name);
  return names;
}

const KernelVariant* KernelRegistry::find(const std::string& name) {
  for (const KernelVariant& v : variants_) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

bool KernelRegistry::variant_supported(const std::string& name) {
  const KernelVariant* v = find(name);
  return v != nullptr && runnable(*v);
}

bool KernelRegistry::force_variant(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutate_mutex());
  if (name.empty()) {
    const KernelVariant* env = select_from_env();
    active_slot().store(env ? env : select_auto(),
                        std::memory_order_release);
    return true;
  }
  const KernelVariant* v = find(name);
  if (v == nullptr || !runnable(*v)) {
    DCN_LOG_WARN << "force_variant(" << name
                 << ") refused: " << (v ? "unsupported CPU" : "not compiled");
    return false;
  }
  active_slot().store(v, std::memory_order_release);
  return true;
}

void KernelRegistry::reselect() { force_variant(""); }

KernelRegistry::ScopedForce::ScopedForce(const std::string& name) {
  previous_ = KernelRegistry::global().active().name;
  ok_ = KernelRegistry::global().force_variant(name);
}

KernelRegistry::ScopedForce::~ScopedForce() {
  KernelRegistry::global().force_variant(previous_);
}

}  // namespace dcn::kernels
