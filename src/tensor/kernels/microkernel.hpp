// Microkernel function contracts and the per-ISA variant descriptor.
//
// An XNNPACK-style kernel layer: the cache-blocked GEMM drivers in
// gemm.cpp/qgemm.cpp own packing, blocking, threading, and epilogues, and
// delegate only the register-resident inner loops to function pointers
// selected at runtime by the KernelRegistry. Each variant translation unit
// (variant_generic / variant_sse41 / variant_avx2 / variant_avx512) is
// compiled with its own ISA flags and registers the kernels below; the
// registry picks the widest variant the executing CPU supports.
//
// Determinism contract (pinned by test_gemm / test_quant / test_kernels):
// every kernel computes each output element with the *identical* scalar
// operation sequence — for SGEMM, per element (i,j):
//     acc = 0; for p ascending: acc += a[i,p] * b[p,j]   (mul, then add)
// with no FMA contraction (all variant TUs and gemm.cpp build with
// -ffp-contract=off) and no cross-lane reassociation, SIMD lanes only ever
// hold *distinct* output elements. Integer kernels (qgemm) are exact by
// arithmetic. Consequence: every variant, at every micro-tile size, is
// memcmp-identical to the generic reference registrant — dispatch and
// autotuning may change speed, never bits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcn::kernels {

/// Upper bounds on micro-tile extents; drivers size stack accumulators with
/// these, so variants must not register larger tiles.
constexpr std::int64_t kMaxMr = 16;
constexpr std::int64_t kMaxNr = 64;

/// SGEMM inner kernel: acc[mr x nr] (row-major, stride nr) = sum over the
/// kb packed steps of the outer product pa-column x pb-row. Overwrites acc
/// (no read). pa is kb steps of mr floats (alpha pre-folded, zero-padded
/// tail rows); pb is kb steps of nr floats (zero-padded tail columns).
using SgemmMicroFn = void (*)(std::int64_t kb, const float* pa,
                              const float* pb, float* acc);

/// One registered SGEMM micro tile: a fixed (MR, NR) instantiation.
struct SgemmMicroKernel {
  std::int64_t mr = 0;
  std::int64_t nr = 0;
  SgemmMicroFn fn = nullptr;
};

/// Quantized GEMM inner row update: acc[j] += av * b[j] for j in [0, n),
/// int32 accumulation (exact — bit-identical for every variant).
using QgemmRowFn = void (*)(std::int64_t n, std::int32_t av,
                            const std::uint8_t* b, std::int32_t* acc);

/// dst[i] += src[i] for i in [0, n) — col2im interior accumulation.
/// Elementwise float add: exact for every vector width.
using AccumulateFn = void (*)(std::int64_t n, const float* src, float* dst);

/// Affine uint8 quantization: dst[i] = clamp(round_away(src[i] * inv_scale
/// + zp), 0, 255). round_away = round-to-nearest, ties away from zero
/// (std::lround semantics) — vector variants must reproduce it bit-exactly.
using QuantizeU8Fn = void (*)(const float* src, std::int64_t n,
                              float inv_scale, float zp, std::uint8_t* dst);

/// dst[i] = scale * (float(src[i]) - zp). Elementwise: exact at any width.
using DequantizeU8Fn = void (*)(const std::uint8_t* src, std::int64_t n,
                                float scale, float zp, float* dst);

/// Symmetric int8 quantization: dst[i] = clamp(round_away(src[i] *
/// inv_scale), -127, 127).
using QuantizeS8Fn = void (*)(const float* src, std::int64_t n,
                              float inv_scale, std::int8_t* dst);

/// max / min over n floats (n >= 1). Exact selection; NaN elements are
/// skipped by the comparison predicate exactly as the scalar loop does.
using ReduceMinMaxFn = float (*)(const float* src, std::int64_t n);

/// One ISA variant: a named bundle of kernels plus the runtime gate that
/// says whether the executing CPU can run it. Higher priority wins the
/// auto-dispatch when supported.
struct KernelVariant {
  std::string name;
  int priority = 0;
  bool (*supported)() = nullptr;  // nullptr = always supported
  /// Micro tiles this variant implements, preference-ordered; the first
  /// entry is the default when the autotuner is off. Every variant must
  /// offer at least one tile.
  std::vector<SgemmMicroKernel> sgemm;
  QgemmRowFn qgemm_row = nullptr;
  AccumulateFn accumulate = nullptr;
  QuantizeU8Fn quantize_u8 = nullptr;
  DequantizeU8Fn dequantize_u8 = nullptr;
  QuantizeS8Fn quantize_s8 = nullptr;
  ReduceMinMaxFn reduce_max = nullptr;
  ReduceMinMaxFn reduce_min = nullptr;

  /// The tile used when tuning is disabled (first registered entry).
  const SgemmMicroKernel& default_sgemm() const { return sgemm.front(); }
  /// The registered kernel for (mr, nr), or nullptr.
  const SgemmMicroKernel* find_sgemm(std::int64_t mr, std::int64_t nr) const {
    for (const auto& k : sgemm) {
      if (k.mr == mr && k.nr == nr) return &k;
    }
    return nullptr;
  }
};

/// Factories implemented by the variant translation units. Only the ones
/// whose DCN_KERNEL_HAVE_* macro is defined are compiled and registered.
KernelVariant make_generic_variant();
KernelVariant make_sse41_variant();
KernelVariant make_avx2_variant();
KernelVariant make_avx512_variant();

}  // namespace dcn::kernels
