// 512-bit (AVX-512-class) kernel variant. Compiled with -mavx512f
// -mavx512bw and gated on both cpuid bits. Sixteen lanes per vector and 32
// zmm registers allow much taller tiles (12x32 holds 24 accumulators).
// Build carries -ffp-contract=off: AVX-512F includes embedded FMA forms the
// compiler would otherwise contract `acc += a * b` into, which would break
// the cross-variant memcmp contract.
#include "core/cpuinfo.hpp"
#include "tensor/kernels/variant_impl.hpp"

namespace dcn::kernels {
namespace {

bool avx512_supported() {
  return cpu_features().avx512f && cpu_features().avx512bw;
}

}  // namespace

KernelVariant make_avx512_variant() {
  KernelVariant v;
  v.name = "avx512";
  v.priority = 30;
  v.supported = &avx512_supported;
  constexpr int W = 16;
  v.sgemm = {
      {4, 32, &sgemm_micro_vec<4, 32, W>},
      {8, 32, &sgemm_micro_vec<8, 32, W>},
      {12, 32, &sgemm_micro_vec<12, 32, W>},
      {4, 64, &sgemm_micro_vec<4, 64, W>},
      {8, 48, &sgemm_micro_vec<8, 48, W>},
      {6, 16, &sgemm_micro_vec<6, 16, W>},
  };
  v.qgemm_row = &qgemm_row_vec<W>;
  v.accumulate = &accumulate_vec<W>;
  v.quantize_u8 = &quantize_u8_vec<W>;
  v.quantize_s8 = &quantize_s8_vec<W>;
  v.dequantize_u8 = &dequantize_u8_vec<W>;
  v.reduce_max = &reduce_minmax_vec<W, true>;
  v.reduce_min = &reduce_minmax_vec<W, false>;
  return v;
}

}  // namespace dcn::kernels
