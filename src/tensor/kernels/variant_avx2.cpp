// 256-bit (AVX2-class) kernel variant. Compiled with -mavx2 only — NOT
// -mfma: the determinism contract forbids contraction, so the FMA units
// would only be reachable through reassociation the engine disallows.
// Eight lanes per vector; tiles sized for the 16 ymm registers.
#include "core/cpuinfo.hpp"
#include "tensor/kernels/variant_impl.hpp"

namespace dcn::kernels {
namespace {

bool avx2_supported() { return cpu_features().avx2; }

}  // namespace

KernelVariant make_avx2_variant() {
  KernelVariant v;
  v.name = "avx2";
  v.priority = 20;
  v.supported = &avx2_supported;
  constexpr int W = 8;
  // 4x32 default mirrors the engine's historical fixed tile (4 ymm per
  // row, 16 accumulators). 6x16 is the classic BLIS-style AVX2 shape.
  v.sgemm = {
      {4, 32, &sgemm_micro_vec<4, 32, W>},
      {6, 16, &sgemm_micro_vec<6, 16, W>},
      {4, 16, &sgemm_micro_vec<4, 16, W>},
      {8, 16, &sgemm_micro_vec<8, 16, W>},
      {4, 48, &sgemm_micro_vec<4, 48, W>},
  };
  v.qgemm_row = &qgemm_row_vec<W>;
  v.accumulate = &accumulate_vec<W>;
  v.quantize_u8 = &quantize_u8_vec<W>;
  v.quantize_s8 = &quantize_s8_vec<W>;
  v.dequantize_u8 = &dequantize_u8_vec<W>;
  v.reduce_max = &reduce_minmax_vec<W, true>;
  v.reduce_min = &reduce_minmax_vec<W, false>;
  return v;
}

}  // namespace dcn::kernels
