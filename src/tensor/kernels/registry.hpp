// Runtime-dispatched registry of SIMD kernel variants.
//
// All compiled-in variants (see microkernel.hpp) register here at first
// use; the active variant is chosen once — highest priority whose
// supported() probe passes on the executing CPU — and cached. The choice
// can be overridden for A/B runs and CI:
//
//   * environment: DCN_KERNEL_VARIANT=generic|sse41|avx2|avx512 (read at
//     first dispatch; reselect() re-reads it),
//   * programmatic: force_variant("avx2") / ScopedForce, used by tests and
//     bench_micro_gemm to measure every variant in one process.
//
// Forcing a variant the CPU cannot run (or that is not compiled in) is
// refused with a warning and auto-selection is kept: dispatch must never
// hand out a kernel that would fault. Switching variants between kernel
// invocations is safe; switching concurrently with a running kernel is
// not (test/bench-only API).
#pragma once

#include <string>
#include <vector>

#include "tensor/kernels/microkernel.hpp"

namespace dcn::kernels {

class KernelRegistry {
 public:
  /// The process-wide registry every kernel call site consults.
  static KernelRegistry& global();

  /// The variant all kernels currently dispatch to.
  const KernelVariant& active();

  /// All compiled-in variants, registration order (generic first).
  std::vector<std::string> variant_names();

  /// Compiled-in variant by name (nullptr if absent). The result may still
  /// be unsupported on this CPU — check supported().
  const KernelVariant* find(const std::string& name);

  /// True when this CPU can run the named compiled-in variant.
  bool variant_supported(const std::string& name);

  /// Force dispatch to `name` ("" returns to auto-selection). Returns
  /// false (keeping the previous selection) if the variant is missing or
  /// unsupported on this CPU.
  bool force_variant(const std::string& name);

  /// Re-run selection, re-reading DCN_KERNEL_VARIANT. Clears any
  /// programmatic force.
  void reselect();

  /// RAII force for benches/tests; restores the previous selection.
  class ScopedForce {
   public:
    explicit ScopedForce(const std::string& name);
    ~ScopedForce();
    ScopedForce(const ScopedForce&) = delete;
    ScopedForce& operator=(const ScopedForce&) = delete;
    /// False when the force was refused (variant missing/unsupported).
    bool ok() const { return ok_; }

   private:
    std::string previous_;
    bool ok_;
  };

 private:
  KernelRegistry();
  const KernelVariant* select_auto() const;
  const KernelVariant* select_from_env() const;

  std::vector<KernelVariant> variants_;
  const KernelVariant* active_ = nullptr;
};

}  // namespace dcn::kernels
