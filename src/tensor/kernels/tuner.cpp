#include "tensor/kernels/tuner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/logging.hpp"
#include "profiler/counters.hpp"

namespace dcn::kernels {
namespace {

constexpr char kMagic[] = "dcn-tile-cache-v1";

// Pinned K block; mirrors gemm.cpp's kBlockK (the one blocking parameter
// the determinism contract forbids tuning — see tuner.hpp).
constexpr std::int64_t kPinnedKc = 256;

// qgemm searches its accumulator row-tile only.
constexpr std::int64_t kQgemmRowTiles[] = {2, 4, 8};

// Shape-class bucket: exact up to 16, then the next power of two. Keys the
// cache by problem *class* so structurally identical GEMMs across layers,
// trials, and batches share one tuning.
std::int64_t class_of(std::int64_t d) {
  if (d <= 0) return 0;
  if (d <= 16) return d;
  std::int64_t c = 16;
  while (c < d) c <<= 1;
  return c;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

bool env_disables_tuner() {
  const char* v = std::getenv("DCN_TUNER");
  return v != nullptr &&
         (std::string(v) == "off" || std::string(v) == "0");
}

std::string resolve_cache_dir() {
  if (const char* dir = std::getenv("DCN_TUNER_CACHE")) {
    if (*dir != '\0') return dir;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME")) {
    if (*xdg != '\0') return std::string(xdg) + "/dcn-tuner";
  }
  if (const char* home = std::getenv("HOME")) {
    if (*home != '\0') return std::string(home) + "/.cache/dcn-tuner";
  }
  return "/tmp/dcn-tuner";
}

bool valid_for(const KernelVariant& variant, char precision,
               const TileConfig& c) {
  if (precision == 'q') {
    for (const std::int64_t mr : kQgemmRowTiles) {
      if (c.mr == mr) return true;
    }
    return false;
  }
  return variant.find_sgemm(c.mr, c.nr) != nullptr && c.mc >= c.mr &&
         c.nc >= c.nr && c.kc == kPinnedKc;
}

TileConfig default_config(const KernelVariant& variant, char precision) {
  TileConfig c;
  if (precision == 'q') {
    c.mr = 4;  // the historical fixed kQMr
    c.nr = 0;
    c.mc = 0;
    c.nc = 0;
  } else {
    const SgemmMicroKernel& k = variant.default_sgemm();
    c.mr = k.mr;
    c.nr = k.nr;
    c.mc = 128;
    c.nc = 256;
  }
  c.kc = kPinnedKc;
  return c;
}

std::vector<TileConfig> candidates(const KernelVariant& variant,
                                   char precision) {
  std::vector<TileConfig> out;
  if (precision == 'q') {
    for (const std::int64_t mr : kQgemmRowTiles) {
      TileConfig c = default_config(variant, 'q');
      c.mr = mr;
      // Default first so the winner is never measured slower than it.
      if (mr == 4) {
        out.insert(out.begin(), c);
      } else {
        out.push_back(c);
      }
    }
    return out;
  }
  // Macro-blocking variants per tile: the square-ish default plus a
  // wide-N and a tall-M split. These move only the tile visit order, so
  // every candidate is bit-identical — pure scheduling search.
  constexpr std::int64_t kBlockings[][2] = {{128, 256}, {64, 512}, {256, 128}};
  const TileConfig def = default_config(variant, precision);
  out.push_back(def);
  for (const SgemmMicroKernel& k : variant.sgemm) {
    for (const auto& b : kBlockings) {
      TileConfig c;
      c.mr = k.mr;
      c.nr = k.nr;
      c.mc = std::max(b[0], k.mr);
      c.nc = std::max(b[1], k.nr);
      c.kc = kPinnedKc;
      if (c.mr == def.mr && c.nr == def.nr && c.mc == def.mc &&
          c.nc == def.nc) {
        continue;  // already candidate #0
      }
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

TileTuner::TileTuner() {
  enabled_ = !env_disables_tuner();
  dir_ = resolve_cache_dir();
}

TileTuner& TileTuner::global() {
  static TileTuner tuner;
  return tuner;
}

std::string TileTuner::cache_key(const KernelVariant& variant, char precision,
                                 std::int64_t m, std::int64_t n,
                                 std::int64_t k) {
  std::ostringstream os;
  os << "tile:v1:" << variant.name << ':' << precision << ":m"
     << class_of(m) << ":n" << class_of(n) << ":k" << class_of(k);
  // The registered tile table is part of the content: a rebuilt binary
  // offering different tiles must not replay a winner it cannot run.
  os << ":tiles";
  for (const SgemmMicroKernel& t : variant.sgemm) {
    os << ',' << t.mr << 'x' << t.nr;
  }
  return os.str();
}

std::string TileTuner::entry_path(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dir_.empty()) return "";
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.tile",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir_ + "/" + name;
}

TileConfig TileTuner::choose(const KernelVariant& variant, char precision,
                             std::int64_t m, std::int64_t n, std::int64_t k,
                             const MeasureFn& measure) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_) return default_config(variant, precision);
    if (forced_mr_ > 0 && precision == 'f') {
      const SgemmMicroKernel* forced =
          variant.find_sgemm(forced_mr_, forced_nr_);
      if (forced != nullptr) {
        TileConfig c = default_config(variant, precision);
        c.mr = forced->mr;
        c.nr = forced->nr;
        c.mc = std::max<std::int64_t>(128, c.mr);
        c.nc = std::max<std::int64_t>(256, c.nr);
        return c;
      }
    }
  }
  const std::string key = cache_key(variant, precision, m, n, k);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++stats_.memo_hits;
      profiler::counter_add("tuner_cache.hit");
      return it->second;
    }
    ++stats_.memo_misses;
  }
  profiler::counter_add("tuner_cache.miss");

  TileConfig config;
  if (load_entry(key, variant, precision, &config)) {
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.emplace(key, config);
    return config;
  }
  config = tune(variant, precision, m, n, k, measure);
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.emplace(key, config);
  return config;
}

TileConfig TileTuner::tune(const KernelVariant& variant, char precision,
                           std::int64_t m, std::int64_t n, std::int64_t k,
                           const MeasureFn& measure) {
  const std::vector<TileConfig> cands = candidates(variant, precision);
  // Three interleaved passes with a per-candidate min: slow clock/thermal
  // drift during the tune hits every candidate alike instead of favoring
  // whichever happened to be measured during a fast stretch.
  std::vector<double> ms(cands.size(), 1.0e30);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < cands.size(); ++i) {
      ms[i] = std::min(ms[i], measure(cands[i]));
    }
  }
  // Candidate #0 (the variant default) holds the title unless a challenger
  // is clearly — not just measurably — faster; the 10% hysteresis keeps
  // probe noise from dethroning the default on a near-tie, so a tuned
  // configuration is never the loser of a coin flip. Real wins (a better
  // row tile for a skinny FC shape, a wider tile for a wide conv lowering)
  // clear this bar comfortably; the few percent a near-tie could offer is
  // noise-sized on shared hosts anyway.
  std::size_t best_i = 0;
  for (std::size_t i = 1; i < cands.size(); ++i) {
    if (ms[i] < 0.90 * ms[best_i]) best_i = i;
  }
  const TileConfig best = cands[best_i];
  const double best_ms = ms[best_i];
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.tuned;
  }
  profiler::counter_add("tuner.tuned");
  DCN_LOG_DEBUG << "tuned " << variant.name << '/' << precision << ' ' << m
                << 'x' << n << 'x' << k << " -> " << best.mr << 'x' << best.nr
                << " blocks " << best.mc << 'x' << best.nc << " ("
                << best_ms << " ms)";
  store_entry(cache_key(variant, precision, m, n, k), best, best_ms);
  return best;
}

bool TileTuner::load_entry(const std::string& key,
                           const KernelVariant& variant, char precision,
                           TileConfig* config) {
  const std::string path = entry_path(key);
  if (path.empty()) return false;
  std::ifstream in(path);
  if (!in.is_open()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_misses;
    profiler::counter_add("tuner_cache.disk_miss");
    return false;
  }
  std::string magic, line;
  std::getline(in, magic);
  TileConfig c;
  std::string stored_key;
  bool have[5] = {};
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string field = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    char* end = nullptr;
    const std::int64_t num = std::strtoll(value.c_str(), &end, 10);
    if (field == "key") {
      stored_key = value;
    } else if (field == "mr" && end != value.c_str()) {
      c.mr = num;
      have[0] = true;
    } else if (field == "nr" && end != value.c_str()) {
      c.nr = num;
      have[1] = true;
    } else if (field == "mc" && end != value.c_str()) {
      c.mc = num;
      have[2] = true;
    } else if (field == "nc" && end != value.c_str()) {
      c.nc = num;
      have[3] = true;
    } else if (field == "kc" && end != value.c_str()) {
      c.kc = num;
      have[4] = true;
    }
  }
  const bool complete = have[0] && have[1] && have[2] && have[3] && have[4];
  // Content addressing is the integrity check: the magic, the *full* key
  // (not just its hash — collisions and truncation both surface here), and
  // the tile's presence in the running binary's variant table must all
  // agree, or the entry is corrupt and gets re-tuned.
  if (magic != kMagic || stored_key != key || !complete ||
      (precision == 'q' ? !valid_for(variant, 'q', c)
                        : !valid_for(variant, precision, c))) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.corrupt_entries;
    }
    profiler::counter_add("tuner_cache.corrupt");
    DCN_LOG_WARN << "tuner cache entry " << path
                 << " is corrupt or stale; re-tuning";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.disk_hits;
  }
  profiler::counter_add("tuner_cache.disk_hit");
  *config = c;
  return true;
}

void TileTuner::store_entry(const std::string& key, const TileConfig& config,
                            double best_ms) {
  const std::string path = entry_path(key);
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path(), ec);
  if (ec) return;  // cache is best-effort; compute is already done
  // Writer-unique tmp name: concurrent processes tuning the same class must
  // not interleave writes into one tmp file (the rename is atomic; a torn
  // tmp would merely be detected as corrupt, but avoid it anyway).
  std::size_t writer =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
#ifdef __unix__
  writer ^= static_cast<std::size_t>(::getpid()) << 16;
#endif
  const std::string tmp = path + ".tmp" + std::to_string(writer);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return;
    out << kMagic << '\n';
    out << "key=" << key << '\n';
    out << "mr=" << config.mr << '\n';
    out << "nr=" << config.nr << '\n';
    out << "mc=" << config.mc << '\n';
    out << "nc=" << config.nc << '\n';
    out << "kc=" << config.kc << '\n';
    out << "ms=" << best_ms << '\n';
  }
  // Atomic publish: a concurrent reader sees the old entry or the new one,
  // never a torn write.
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

void TileTuner::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool TileTuner::enabled() {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void TileTuner::set_cache_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  dir_ = dir.empty() ? resolve_cache_dir() : dir;
  memo_.clear();
}

std::string TileTuner::cache_dir() {
  std::lock_guard<std::mutex> lock(mutex_);
  return dir_;
}

void TileTuner::clear_memory() {
  std::lock_guard<std::mutex> lock(mutex_);
  memo_.clear();
}

TunerStats TileTuner::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TileTuner::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = TunerStats{};
}

void TileTuner::force_tile(std::int64_t mr, std::int64_t nr) {
  std::lock_guard<std::mutex> lock(mutex_);
  forced_mr_ = mr;
  forced_nr_ = nr;
}

TileTuner::ScopedForcedTile::ScopedForcedTile(std::int64_t mr,
                                              std::int64_t nr) {
  TileTuner::global().force_tile(mr, nr);
}

TileTuner::ScopedForcedTile::~ScopedForcedTile() {
  TileTuner::global().force_tile(0, 0);
}

}  // namespace dcn::kernels
