// Thread-local scratch arena for tensor-engine kernels.
//
// The GEMM pack buffers, im2col column matrices, and per-chunk gradient
// partials used to be per-call std::vector allocations — one or two heap
// round-trips per sample per layer per step. The arena replaces them with
// bump allocation out of thread-local storage that is retained between
// calls, so steady-state training does no heap allocation on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dcn {

/// Per-thread bump arena. Usage:
///
///   Workspace& ws = Workspace::tls();
///   Workspace::Scope scope(ws);          // marks the arena
///   float* col = ws.floats(k * ohw);     // 64-byte aligned scratch
///   ...                                  // scope exit releases `col`
///
/// Scopes nest: a Conv2d sample task opens a scope for its column matrix,
/// and the GEMM it calls opens an inner scope for its pack buffers. Growth
/// is append-only across a list of blocks, so pointers handed out stay
/// valid until their own scope closes even when a deeper allocation grows
/// the arena. When the outermost scope closes, fragmented blocks are
/// coalesced into one block sized to the high-water mark, so the next pass
/// runs out of a single contiguous allocation.
class Workspace {
 public:
  /// Alignment of every pointer the arena hands out: one cache line, which
  /// is also the widest (AVX-512) vector. The SIMD micro kernels rely on
  /// this for their packed A/B panels; test_workspace pins it.
  static constexpr std::size_t kAlignment = 64;

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena.
  static Workspace& tls();

  /// 64-byte-aligned uninitialized scratch for `n` floats, valid until the
  /// innermost open Scope closes. Requires an open Scope.
  float* floats(std::size_t n);

  /// 64-byte-aligned uninitialized scratch for `n` bytes out of the same
  /// arena (the quantized GEMM packs its u8/s8 panels here).
  std::uint8_t* bytes(std::size_t n);

  /// 64-byte-aligned uninitialized scratch for `n` 32-bit integers
  /// (quantized-GEMM accumulators and weight row sums).
  std::int32_t* ints(std::size_t n);

  /// RAII arena mark: restores the allocation cursor on destruction,
  /// releasing everything allocated inside the scope at once.
  class Scope {
   public:
    explicit Scope(Workspace& ws);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Total floats of backing storage currently held (tests/diagnostics).
  std::size_t capacity() const;
  /// Open scope count (tests/diagnostics).
  int depth() const { return depth_; }

 private:
  struct AlignedDeleter {
    void operator()(float* p) const;
  };
  struct Block {
    std::unique_ptr<float[], AlignedDeleter> data;
    std::size_t size = 0;  // floats
    std::size_t used = 0;  // floats
  };

  void restore(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t cursor_ = 0;  // index of the block currently bump-allocated
  int depth_ = 0;
};

}  // namespace dcn
