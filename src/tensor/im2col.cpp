#include "tensor/im2col.hpp"

#include "core/error.hpp"

namespace dcn {

void im2col(const float* im, const ConvGeometry& g, float* col) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  DCN_CHECK(oh > 0 && ow > 0) << "conv output is empty: " << oh << 'x' << ow;
  const std::int64_t out_cols = oh * ow;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* im_c = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        float* col_row =
            col + ((c * g.kernel_h + kh) * g.kernel_w + kw) * out_cols;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.height) {
            for (std::int64_t ox = 0; ox < ow; ++ox) col_row[oy * ow + ox] = 0;
            continue;
          }
          const float* im_row = im_c + iy * g.width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride_w - g.pad_w + kw;
            col_row[oy * ow + ox] =
                (ix >= 0 && ix < g.width) ? im_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* im) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t out_cols = oh * ow;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* im_c = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const float* col_row =
            col + ((c * g.kernel_h + kh) * g.kernel_w + kw) * out_cols;
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.height) continue;
          float* im_row = im_c + iy * g.width;
          for (std::int64_t ox = 0; ox < ow; ++ox) {
            const std::int64_t ix = ox * g.stride_w - g.pad_w + kw;
            if (ix >= 0 && ix < g.width) im_row[ix] += col_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace dcn
