#include "tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "core/error.hpp"
#include "tensor/kernels/registry.hpp"

namespace dcn {
namespace {

// Valid output-x range [ox_lo, ox_hi) for which ix = ox*stride - pad + k
// lands inside [0, width): the interior where no per-element padding
// predicate is needed.
inline void valid_ox_range(std::int64_t ow, std::int64_t width,
                           std::int64_t stride, std::int64_t pad,
                           std::int64_t k, std::int64_t* ox_lo,
                           std::int64_t* ox_hi) {
  const std::int64_t shift = pad - k;  // ix = ox*stride - shift
  std::int64_t lo = shift > 0 ? (shift + stride - 1) / stride : 0;
  std::int64_t hi = (width - 1 + shift) / stride + 1;  // width-1+shift >= ...
  if (width - 1 + shift < 0) hi = 0;
  *ox_lo = std::min(std::max<std::int64_t>(lo, 0), ow);
  *ox_hi = std::min(std::max(hi, *ox_lo), ow);
}

}  // namespace

void im2col(const float* im, const ConvGeometry& g, float* col) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  DCN_CHECK(oh > 0 && ow > 0) << "conv output is empty: " << oh << 'x' << ow;
  const std::int64_t out_cols = oh * ow;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    const float* im_c = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        float* col_row =
            col + ((c * g.kernel_h + kh) * g.kernel_w + kw) * out_cols;
        std::int64_t ox_lo, ox_hi;
        valid_ox_range(ow, g.width, g.stride_w, g.pad_w, kw, &ox_lo, &ox_hi);
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          float* __restrict dst = col_row + oy * ow;
          const std::int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.height) {
            std::memset(dst, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* __restrict im_row = im_c + iy * g.width;
          // Edge columns hit padding: zero-fill outside [ox_lo, ox_hi).
          if (ox_lo > 0) {
            std::memset(dst, 0,
                        static_cast<std::size_t>(ox_lo) * sizeof(float));
          }
          // Interior fast path: every tap is in bounds, no predicate.
          const std::int64_t ix0 = ox_lo * g.stride_w - g.pad_w + kw;
          if (g.stride_w == 1) {
            std::memcpy(dst + ox_lo, im_row + ix0,
                        static_cast<std::size_t>(ox_hi - ox_lo) *
                            sizeof(float));
          } else {
            for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox) {
              dst[ox] = im_row[ix0 + (ox - ox_lo) * g.stride_w];
            }
          }
          if (ox_hi < ow) {
            std::memset(dst + ox_hi, 0,
                        static_cast<std::size_t>(ow - ox_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* im) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t out_cols = oh * ow;
  // Interior accumulation is the hot loop: dispatch the elementwise
  // dst += src to the active SIMD variant (exact at any width).
  const kernels::AccumulateFn accumulate =
      kernels::KernelRegistry::global().active().accumulate;
  for (std::int64_t c = 0; c < g.channels; ++c) {
    float* im_c = im + c * g.height * g.width;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const float* col_row =
            col + ((c * g.kernel_h + kh) * g.kernel_w + kw) * out_cols;
        std::int64_t ox_lo, ox_hi;
        valid_ox_range(ow, g.width, g.stride_w, g.pad_w, kw, &ox_lo, &ox_hi);
        for (std::int64_t oy = 0; oy < oh; ++oy) {
          const std::int64_t iy = oy * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.height) continue;
          float* __restrict im_row = im_c + iy * g.width;
          const float* __restrict src = col_row + oy * ow;
          // Out-of-range taps scatter into padding: nothing to accumulate.
          const std::int64_t ix0 = ox_lo * g.stride_w - g.pad_w + kw;
          if (g.stride_w == 1) {
            accumulate(ox_hi - ox_lo, src + ox_lo, im_row + ix0);
          } else {
            for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox) {
              im_row[ix0 + (ox - ox_lo) * g.stride_w] += src[ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace dcn
