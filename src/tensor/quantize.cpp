#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "tensor/kernels/registry.hpp"

namespace dcn {
namespace {

// Round-to-nearest with ties away from zero (std::lround semantics),
// saturated to [lo, hi].
std::int32_t round_clamp(float x, std::int32_t lo, std::int32_t hi) {
  const auto r = static_cast<std::int32_t>(std::lround(x));
  return std::clamp(r, lo, hi);
}

}  // namespace

std::uint8_t QuantParams::quantize(float x) const {
  return static_cast<std::uint8_t>(
      round_clamp(x / scale + static_cast<float>(zero_point), 0, 255));
}

QuantParams choose_quant_params(float min_value, float max_value) {
  DCN_CHECK(min_value <= max_value)
      << "quant range [" << min_value << ", " << max_value << "]";
  // Widen to include 0 so the zero point lands inside [0, 255] and 0.0 is
  // exactly representable (padding taps, ReLU outputs).
  const double lo = std::min(0.0, static_cast<double>(min_value));
  const double hi = std::max(0.0, static_cast<double>(max_value));
  QuantParams params;
  if (hi == lo) {  // all-zero tensor
    params.scale = 1.0f;
    params.zero_point = 0;
    return params;
  }
  params.scale = static_cast<float>((hi - lo) / 255.0);
  // Nudge the zero point to the nearest integer; the scale keeps the full
  // range representable up to one step of rounding slack at each end.
  params.zero_point = round_clamp(
      static_cast<float>(-lo / (static_cast<double>(hi) - lo) * 255.0), 0,
      255);
  return params;
}

// The bulk loops below dispatch to the active SIMD variant. The vector
// kernels reproduce std::lround's ties-away rounding bit-exactly (see
// kernels/variant_impl.hpp), so every variant quantizes identically to the
// scalar round_clamp above — pinned by test_kernels.
void quantize_u8(const float* src, std::int64_t n, const QuantParams& params,
                 std::uint8_t* dst) {
  const float inv_scale = 1.0f / params.scale;
  const auto zp = static_cast<float>(params.zero_point);
  kernels::KernelRegistry::global().active().quantize_u8(src, n, inv_scale,
                                                         zp, dst);
}

void dequantize_u8(const std::uint8_t* src, std::int64_t n,
                   const QuantParams& params, float* dst) {
  const auto zp = static_cast<float>(params.zero_point);
  kernels::KernelRegistry::global().active().dequantize_u8(src, n,
                                                           params.scale, zp,
                                                           dst);
}

float symmetric_scale(float max_abs) {
  DCN_CHECK(max_abs >= 0.0f) << "max_abs " << max_abs;
  return max_abs == 0.0f ? 1.0f : max_abs / 127.0f;
}

void quantize_s8(const float* src, std::int64_t n, float scale,
                 std::int8_t* dst) {
  const float inv_scale = 1.0f / scale;
  kernels::KernelRegistry::global().active().quantize_s8(src, n, inv_scale,
                                                         dst);
}

namespace {

QuantizedWeights quantize_rows(const float* w, std::int64_t rows,
                               std::int64_t cols, bool per_channel) {
  DCN_CHECK(rows > 0 && cols > 0) << "weights [" << rows << ", " << cols
                                  << "]";
  QuantizedWeights q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<std::size_t>(rows * cols));
  if (per_channel) {
    q.scales.resize(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
      float max_abs = 0.0f;
      for (std::int64_t c = 0; c < cols; ++c) {
        max_abs = std::max(max_abs, std::abs(w[r * cols + c]));
      }
      const float scale = symmetric_scale(max_abs);
      q.scales[static_cast<std::size_t>(r)] = scale;
      quantize_s8(w + r * cols, cols, scale, q.data.data() + r * cols);
    }
  } else {
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < rows * cols; ++i) {
      max_abs = std::max(max_abs, std::abs(w[i]));
    }
    const float scale = symmetric_scale(max_abs);
    q.scales.assign(1, scale);
    quantize_s8(w, rows * cols, scale, q.data.data());
  }
  return q;
}

}  // namespace

QuantizedWeights quantize_weights_per_channel(const float* w,
                                              std::int64_t rows,
                                              std::int64_t cols) {
  return quantize_rows(w, rows, cols, /*per_channel=*/true);
}

QuantizedWeights quantize_weights_per_tensor(const float* w,
                                             std::int64_t rows,
                                             std::int64_t cols) {
  return quantize_rows(w, rows, cols, /*per_channel=*/false);
}

}  // namespace dcn
