#include "tensor/reduce.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dcn {

double sum(const Tensor& a) {
  double acc = 0.0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

double mean(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "mean of empty tensor";
  return sum(a) / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "max of empty tensor";
  float mx = a[0];
  const std::int64_t n = a.numel();
  for (std::int64_t i = 1; i < n; ++i) mx = std::max(mx, a[i]);
  return mx;
}

float min_value(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "min of empty tensor";
  float mn = a[0];
  const std::int64_t n = a.numel();
  for (std::int64_t i = 1; i < n; ++i) mn = std::min(mn, a[i]);
  return mn;
}

std::pair<float, std::int64_t> argmax(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "argmax of empty tensor";
  float mx = a[0];
  std::int64_t idx = 0;
  const std::int64_t n = a.numel();
  for (std::int64_t i = 1; i < n; ++i) {
    if (a[i] > mx) {
      mx = a[i];
      idx = i;
    }
  }
  return {mx, idx};
}

Tensor row_sums(const Tensor& a) {
  DCN_CHECK(a.rank() == 2) << "row_sums expects rank 2";
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor out(Shape{rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    const float* p = a.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) acc += p[c];
    out[r] = static_cast<float>(acc);
  }
  return out;
}

Tensor col_sums(const Tensor& a) {
  DCN_CHECK(a.rank() == 2) << "col_sums expects rank 2";
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor out(Shape{cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* p = a.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) out[c] += p[c];
  }
  return out;
}

}  // namespace dcn
