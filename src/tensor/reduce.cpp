#include "tensor/reduce.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "tensor/kernels/registry.hpp"

namespace dcn {
namespace {

// Four independent double accumulators: breaks the serial add dependency so
// the compiler can pipeline/vectorize. Lanes are merged in fixed order, so
// the result is deterministic (though grouped differently from a single
// serial chain — callers get double precision, not a pinned bit pattern).
double sum_span(const float* p, std::int64_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += p[i];
    acc1 += p[i + 1];
    acc2 += p[i + 2];
    acc3 += p[i + 3];
  }
  for (; i < n; ++i) acc0 += p[i];
  return ((acc0 + acc1) + acc2) + acc3;
}

}  // namespace

double sum(const Tensor& a) { return sum_span(a.data(), a.numel()); }

double mean(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "mean of empty tensor";
  return sum(a) / static_cast<double>(a.numel());
}

float max_value(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "max of empty tensor";
  return kernels::KernelRegistry::global().active().reduce_max(a.data(),
                                                               a.numel());
}

float min_value(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "min of empty tensor";
  return kernels::KernelRegistry::global().active().reduce_min(a.data(),
                                                               a.numel());
}

std::pair<float, std::int64_t> argmax(const Tensor& a) {
  DCN_CHECK(a.numel() > 0) << "argmax of empty tensor";
  // Vectorized max, then a scan for its first position — preserves the
  // scalar loop's first-occurrence semantics (and its all-NaN behaviour:
  // the max is then a[0] and the scan falls through to index 0).
  const float mx = max_value(a);
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (a[i] == mx) return {mx, i};
  }
  return {mx, 0};
}

Tensor row_sums(const Tensor& a) {
  DCN_CHECK(a.rank() == 2) << "row_sums expects rank 2";
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor out(Shape{rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    out[r] = static_cast<float>(sum_span(a.data() + r * cols, cols));
  }
  return out;
}

Tensor col_sums(const Tensor& a) {
  DCN_CHECK(a.rank() == 2) << "col_sums expects rank 2";
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  Tensor out(Shape{cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* p = a.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) out[c] += p[c];
  }
  return out;
}

}  // namespace dcn
