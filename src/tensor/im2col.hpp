// im2col / col2im lowering for convolution.
//
// Conv2d forward lowers input patches into a (C*KH*KW) x (OH*OW) column
// matrix so the convolution becomes a GEMM against the filter matrix;
// col2im scatters gradients back for the backward pass. This mirrors the
// cuDNN IMPLICIT_GEMM algorithm the paper's PyTorch stack uses, which is
// also why the simulated-GPU cost model treats conv as GEMM-shaped work.
#pragma once

#include <cstdint>

namespace dcn {

/// Geometry of a 2-D convolution / pooling window application.
struct ConvGeometry {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride_h = 1;
  std::int64_t stride_w = 1;
  std::int64_t pad_h = 0;
  std::int64_t pad_w = 0;

  std::int64_t out_h() const {
    return (height + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::int64_t out_w() const {
    return (width + 2 * pad_w - kernel_w) / stride_w + 1;
  }
};

/// im: CHW image. col: (C*KH*KW) x (OH*OW) row-major matrix. Out-of-bounds
/// (padding) taps are written as zero.
void im2col(const float* im, const ConvGeometry& g, float* col);

/// Scatter-add the column matrix back into a CHW image (accumulates; the
/// caller zeroes `im` first).
void col2im(const float* col, const ConvGeometry& g, float* im);

}  // namespace dcn
