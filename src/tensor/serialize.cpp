#include "tensor/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/error.hpp"

namespace dcn {
namespace {

constexpr char kMagic[4] = {'D', 'C', 'N', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DCN_CHECK(is.good()) << "truncated tensor stream";
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  DCN_CHECK(is.good()) << "truncated string in tensor stream";
  return s;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i) {
    write_pod<std::int64_t>(os, t.dim(i));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  DCN_CHECK(os.good()) << "tensor write failed";
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  DCN_CHECK(is.good() && std::memcmp(magic, kMagic, 4) == 0)
      << "bad tensor magic";
  const auto version = read_pod<std::uint32_t>(is);
  DCN_CHECK(version == kVersion) << "unsupported tensor version " << version;
  const auto rank = read_pod<std::uint32_t>(is);
  DCN_CHECK(rank <= 8) << "implausible tensor rank " << rank;
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) {
    d = read_pod<std::int64_t>(is);
    DCN_CHECK(d >= 0) << "negative dim in stream";
  }
  Tensor t{Shape(dims)};
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  DCN_CHECK(is.good()) << "truncated tensor payload";
  return t;
}

void save_tensors(const std::string& path,
                  const std::vector<std::pair<std::string, Tensor>>& tensors) {
  std::ofstream os(path, std::ios::binary);
  DCN_CHECK(os.good()) << "cannot open " << path;
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, tensor] : tensors) {
    write_string(os, name);
    write_tensor(os, tensor);
  }
  DCN_CHECK(os.good()) << "write to " << path << " failed";
}

std::vector<std::pair<std::string, Tensor>> load_tensors(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DCN_CHECK(is.good()) << "cannot open " << path;
  const auto count = read_pod<std::uint32_t>(is);
  std::vector<std::pair<std::string, Tensor>> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = read_string(is);
    out.emplace_back(std::move(name), read_tensor(is));
  }
  return out;
}

}  // namespace dcn
