// Single-precision GEMM — the tensor engine's workhorse.
//
// Convolution (via im2col) and the fully-connected layers lower onto this
// kernel, so it is the numerical workhorse of both training and inference.
// The implementation is a cache-blocked, register-tiled, SIMD-vectorized
// SGEMM with optional transposes, partitioned across the shared compute
// pool (core/parallel). It is intentionally dependency-free (no BLAS) so
// builds are hermetic.
//
// Determinism: output C tiles are disjoint across threads and every C
// element accumulates its K contributions in the same fixed order for any
// partition, so results are bit-identical for any thread count. (With
// DCN_NATIVE_KERNELS=ON the kernels are tuned for the build host, so bit
// patterns are reproducible per machine, not across machines.)
#pragma once

#include <cstdint>

namespace dcn {

/// Optional operation fused into the C-tile store of the final K block,
/// applied while the tile is register/cache hot. Replaces the separate
/// bias/activation sweeps the layers used to run over the full output.
struct GemmEpilogue {
  /// If set, row_bias[i] is added to every element of row i (a conv layer's
  /// per-output-channel bias over the [oc, oh*ow] output).
  const float* row_bias = nullptr;
  /// If set, col_bias[j] is added to every element of column j (a linear
  /// layer's per-feature bias over the [batch, out] output).
  const float* col_bias = nullptr;
  /// Apply max(x, 0) after the bias terms.
  bool relu = false;

  bool empty() const { return !row_bias && !col_bias && !relu; }
};

/// C = alpha * op(A) * op(B) + beta * C.
/// A is m×k after the optional transpose, B is k×n, C is m×n; all row-major
/// with leading dimensions lda/ldb/ldc (the stride between rows of the
/// *stored* matrix, i.e. pre-transpose).
void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc);

/// sgemm with a fused epilogue: epilogue(alpha * op(A) * op(B) + beta * C).
/// The epilogue is applied exactly once per C element, fused into the last
/// K-block store (or a single sweep in the degenerate k == 0 / alpha == 0
/// cases).
void sgemm_ex(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
              std::int64_t k, float alpha, const float* a, std::int64_t lda,
              const float* b, std::int64_t ldb, float beta, float* c,
              std::int64_t ldc, const GemmEpilogue& epilogue);

/// Convenience wrapper for contiguous row-major matrices:
/// C[m×n] = op(A) * op(B) with natural leading dimensions.
void matmul(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, const float* a, const float* b, float* c);

/// Reference triple-loop GEMM used by tests to validate the blocked kernel.
void sgemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, float alpha,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float beta, float* c, std::int64_t ldc);

/// The pre-threading scalar blocked kernel (the engine as of PR 2), kept in
/// a separately-compiled translation unit with the project's generic flags.
/// Benchmarks use it as the speedup baseline; tests use it as a second
/// reference implementation.
void sgemm_blocked_scalar(bool trans_a, bool trans_b, std::int64_t m,
                          std::int64_t n, std::int64_t k, float alpha,
                          const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, float beta, float* c,
                          std::int64_t ldc);

}  // namespace dcn
