// Single-precision GEMM.
//
// Convolution (via im2col) and the fully-connected layers lower onto this
// kernel, so it is the numerical workhorse of both training and inference.
// The implementation is a cache-blocked, register-tiled SGEMM with optional
// transposes; it is intentionally dependency-free (no BLAS) so builds are
// hermetic and results bit-reproducible across machines.
#pragma once

#include <cstdint>

namespace dcn {

/// C = alpha * op(A) * op(B) + beta * C.
/// A is m×k after the optional transpose, B is k×n, C is m×n; all row-major
/// with leading dimensions lda/ldb/ldc (the stride between rows of the
/// *stored* matrix, i.e. pre-transpose).
void sgemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float* a, std::int64_t lda,
           const float* b, std::int64_t ldb, float beta, float* c,
           std::int64_t ldc);

/// Convenience wrapper for contiguous row-major matrices:
/// C[m×n] = op(A) * op(B) with natural leading dimensions.
void matmul(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
            std::int64_t k, const float* a, const float* b, float* c);

/// Reference triple-loop GEMM used by tests to validate the blocked kernel.
void sgemm_reference(bool trans_a, bool trans_b, std::int64_t m,
                     std::int64_t n, std::int64_t k, float alpha,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float beta, float* c, std::int64_t ldc);

}  // namespace dcn
