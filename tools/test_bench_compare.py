#!/usr/bin/env python3
"""Unit tests for bench_compare.py, run from ctest as `test_bench_compare`.

Covers the gate semantics the CI bench jobs rely on:
  * a numeric metric present in the baseline but missing from the current
    run fails, and the FAIL line names the missing key;
  * a NON-numeric key (config echo) missing from the current run fails
    too — a bench that silently stops reporting a field must not pass;
  * bubble_fraction is lower-better with 0.02 absolute tolerance;
  * throughput_ratio is higher-better with relative tolerance;
  * improvements and in-tolerance noise pass.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_compare  # noqa: E402


def run_compare(baseline, current, extra_args=()):
    """Run bench_compare.main on two dicts; return (exit_code, report)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        with open(cur_path, "w") as f:
            json.dump(current, f)
        out = io.StringIO()
        with redirect_stdout(out):
            code = bench_compare.main(
                [base_path, cur_path, *extra_args])
        return code, out.getvalue()


BASELINE = {
    "model": "sppnet_c2",
    "devices": 192,
    "pipeline": {
        "throughput_rps": 587730.0,
        "p99_ms": 1.166,
        "slo_attainment": 0.8809,
        "bubble_fraction": 0.376,
    },
    "throughput_ratio": 2.343,
}


class MissingKeys(unittest.TestCase):
    def test_missing_numeric_metric_fails_with_key_name(self):
        current = json.loads(json.dumps(BASELINE))
        del current["pipeline"]["p99_ms"]
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 1)
        self.assertIn("**FAIL**", report)
        self.assertIn("missing from current run: pipeline.p99_ms", report)

    def test_missing_non_numeric_key_fails_with_key_name(self):
        current = json.loads(json.dumps(BASELINE))
        del current["model"]
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 1)
        self.assertIn("missing from current run: model", report)

    def test_extra_key_in_current_is_not_a_failure(self):
        current = json.loads(json.dumps(BASELINE))
        current["pipeline"]["new_metric"] = 1.0
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 0)
        self.assertIn("**PASS**", report)


class Classifiers(unittest.TestCase):
    def test_bubble_fraction_increase_beyond_abs_tolerance_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["pipeline"]["bubble_fraction"] = 0.376 + 0.05
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 1)
        self.assertIn("regressed: pipeline.bubble_fraction", report)

    def test_bubble_fraction_within_tolerance_passes(self):
        current = json.loads(json.dumps(BASELINE))
        current["pipeline"]["bubble_fraction"] = 0.376 + 0.015
        code, _ = run_compare(BASELINE, current)
        self.assertEqual(code, 0)

    def test_bubble_fraction_decrease_is_improvement(self):
        current = json.loads(json.dumps(BASELINE))
        current["pipeline"]["bubble_fraction"] = 0.376 - 0.05
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 0)
        self.assertIn("improved", report)

    def test_throughput_ratio_drop_beyond_rel_tolerance_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["throughput_ratio"] = 2.343 * 0.95
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 1)
        self.assertIn("regressed: throughput_ratio", report)

    def test_throughput_ratio_gain_passes(self):
        current = json.loads(json.dumps(BASELINE))
        current["throughput_ratio"] = 2.343 * 1.10
        code, _ = run_compare(BASELINE, current)
        self.assertEqual(code, 0)

    def test_slo_attainment_drop_fails_absolute(self):
        current = json.loads(json.dumps(BASELINE))
        current["pipeline"]["slo_attainment"] = 0.8809 - 0.05
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 1)
        self.assertIn("pipeline.slo_attainment", report)

    def test_p99_latency_regression_fails_relative(self):
        current = json.loads(json.dumps(BASELINE))
        current["pipeline"]["p99_ms"] = 1.166 * 1.10
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 1)
        self.assertIn("regressed: pipeline.p99_ms", report)

    def test_config_echo_change_warns_but_passes(self):
        current = json.loads(json.dumps(BASELINE))
        current["model"] = "sppnet_c3"
        code, report = run_compare(BASELINE, current)
        self.assertEqual(code, 0)
        self.assertIn("changed", report)


class Report(unittest.TestCase):
    def test_report_file_written(self):
        with tempfile.TemporaryDirectory() as tmp:
            report_path = os.path.join(tmp, "diff.md")
            base_path = os.path.join(tmp, "b.json")
            cur_path = os.path.join(tmp, "c.json")
            with open(base_path, "w") as f:
                json.dump(BASELINE, f)
            with open(cur_path, "w") as f:
                json.dump(BASELINE, f)
            out = io.StringIO()
            with redirect_stdout(out):
                code = bench_compare.main(
                    [base_path, cur_path, "--report", report_path])
            self.assertEqual(code, 0)
            with open(report_path) as f:
                self.assertIn("**PASS**", f.read())


if __name__ == "__main__":
    unittest.main()
