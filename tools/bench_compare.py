#!/usr/bin/env python3
"""Compare a benchmark JSON against its committed baseline and gate CI.

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance 0.02] [--report out.md]

Both files are the JSON exports of bench_quant / bench_serving (flat dicts,
possibly with one level of nesting). Metrics are classified by key name:

  * ``*_ms`` / ``*latency*``        lower is better, relative tolerance
  * ``*_launches``                  lower is better, relative tolerance
  * ``*reduction*``                 higher is better, relative tolerance
  * ``*throughput*`` / ``*speedup*`` higher is better, relative tolerance
  * ``*goodput*``                   higher is better, relative tolerance
  * ``*tiles_per_sec*``             higher is better, relative tolerance
  * ``*recovery*``                  lower is better, relative tolerance
  * ``reject_rate``                 lower is better, absolute tolerance 0.02
  * ``slo_attainment``              higher is better, absolute tolerance 0.02
  * ``availability``                higher is better, absolute tolerance 0.02
  * ``bubble_fraction``             lower is better, absolute tolerance 0.02
  * ``*_ap``                        higher is better, absolute tolerance 0.02
  * ``ap_drop_points``              lower is better, absolute tolerance 2.0
  * ``ap_delta_points``             lower is better, absolute tolerance 1.0
  * anything else                   informational (config echo, counts)

(``throughput_ratio`` — the pipeline-vs-replica gate — matches the
``*throughput*`` rule: higher is better, relative tolerance.)

The default relative tolerance is 2%: a latency increase or throughput drop
beyond it fails the gate (exit 1). Improvements never fail. ANY key present
in the baseline but missing from the current run — numeric metric or config
echo alike — is a hard failure named in the FAIL line: a bench that
silently stops reporting a number must not pass. The markdown report
(written with --report, printed to stdout either way) is uploaded as a CI
artifact so regressions are diagnosable from the run page.

The benches run on a simulated device with seeded data, so their numbers are
machine-independent; the tolerance absorbs rounding in the JSON rendering,
not hardware noise.
"""

from __future__ import annotations

import argparse
import json
import sys

ABS_TOLERANCES = {
    "reject_rate": 0.02,
    "slo_attainment": 0.02,
    # Pipeline idle share: a small absolute creep is schedule noise, more
    # means the partition balance or the wavefront regressed.
    "bubble_fraction": 0.02,
    "ap_drop_points": 2.0,
    # The cascade's accuracy budget: the bench asserts <= 1.0 AP-point
    # drop itself, and the gate holds the committed baseline to the same
    # line so a creeping delta cannot hide behind a passing floor.
    "ap_delta_points": 1.0,
}


def classify(key):
    """Return (direction, kind) for a metric key.

    direction: -1 lower-better, +1 higher-better, 0 informational.
    kind: "relative", "absolute", or "info".
    """
    leaf = key.rsplit(".", 1)[-1]
    if leaf in ("reject_rate", "ap_drop_points", "ap_delta_points"):
        return -1, "absolute"
    if leaf in ("slo_attainment", "availability"):
        return +1, "absolute"
    if leaf == "bubble_fraction":
        return -1, "absolute"
    if leaf.endswith("_ap"):
        return +1, "absolute"
    if "recovery" in leaf:
        return -1, "relative"
    if leaf.endswith("_launches"):
        return -1, "relative"
    if "reduction" in leaf:
        return +1, "relative"
    if leaf.endswith("_ms") or "latency" in leaf:
        return -1, "relative"
    if "throughput" in leaf or "speedup" in leaf or "goodput" in leaf:
        return +1, "relative"
    if "tiles_per_sec" in leaf:
        return +1, "relative"
    return 0, "info"


def flatten(obj, prefix=""):
    flat = {}
    for key, value in obj.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            flat.update(flatten(value, path))
        else:
            flat[path] = value
    return flat


def compare(baseline, current, rel_tolerance):
    """Yield (key, base, cur, delta_str, status) rows, worst first."""
    rows = []
    for key, base in sorted(baseline.items()):
        direction, kind = classify(key)
        if key not in current:
            # Hard failure regardless of type: a key the baseline reports
            # must not silently vanish from a fresh run.
            rows.append((key, base, None, "", "missing"))
            continue
        cur = current[key]
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            status = "ok" if cur == base else "changed"
            rows.append((key, base, cur, "", status))
            continue
        delta = cur - base
        if kind == "info" or direction == 0:
            rows.append((key, base, cur, f"{delta:+g}", "info"))
            continue
        if kind == "absolute":
            tolerance = ABS_TOLERANCES.get(key.rsplit(".", 1)[-1], 0.02)
            regressed = direction * delta < -tolerance
            improved = direction * delta > tolerance
            delta_str = f"{delta:+.4f}"
        else:
            tolerance = rel_tolerance * abs(base)
            regressed = direction * delta < -tolerance
            improved = direction * delta > tolerance
            pct = (delta / base * 100.0) if base else float("inf")
            delta_str = f"{pct:+.2f}%"
        status = "REGRESSION" if regressed else (
            "improved" if improved else "ok")
        rows.append((key, base, cur, delta_str, status))
    for key in sorted(set(current) - set(baseline)):
        rows.append((key, None, current[key], "", "new"))
    order = {"REGRESSION": 0, "missing": 1, "changed": 2, "improved": 3,
             "ok": 4, "info": 5, "new": 6}
    rows.sort(key=lambda r: (order[r[4]], r[0]))
    return rows


def render(rows, baseline_path, current_path):
    lines = [
        f"# Bench comparison: `{current_path}` vs `{baseline_path}`",
        "",
        "| metric | baseline | current | delta | status |",
        "|---|---|---|---|---|",
    ]
    for key, base, cur, delta, status in rows:
        fmt = lambda v: "—" if v is None else (
            f"{v:.4f}" if isinstance(v, float) else str(v))
        mark = {"REGRESSION": "❌ REGRESSION", "missing": "❌ missing",
                "changed": "⚠️ changed", "improved": "✅ improved",
                "ok": "ok", "info": "info", "new": "new"}[status]
        lines.append(
            f"| {key} | {fmt(base)} | {fmt(cur)} | {delta} | {mark} |")
    failed = [r for r in rows if r[4] in ("REGRESSION", "missing")]
    lines.append("")
    if failed:
        regressed = [r[0] for r in failed if r[4] == "REGRESSION"]
        missing = [r[0] for r in failed if r[4] == "missing"]
        parts = []
        if regressed:
            parts.append("regressed: " + ", ".join(regressed))
        if missing:
            parts.append("missing from current run: " + ", ".join(missing))
        lines.append("**FAIL**: {} metric(s) — {}".format(
            len(failed), "; ".join(parts)))
    else:
        lines.append("**PASS**: no regressions")
    return "\n".join(lines) + "\n", len(failed)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Gate CI on benchmark JSON regressions.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="relative tolerance (default 2%%)")
    parser.add_argument("--report", help="also write the markdown here")
    args = parser.parse_args(argv)

    with open(args.baseline) as f:
        baseline = flatten(json.load(f))
    with open(args.current) as f:
        current = flatten(json.load(f))

    rows = compare(baseline, current, args.tolerance)
    report, failures = render(rows, args.baseline, args.current)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    sys.stdout.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
