file(REMOVE_RECURSE
  "CMakeFiles/dcn_graph.dir/blocks.cpp.o"
  "CMakeFiles/dcn_graph.dir/blocks.cpp.o.d"
  "CMakeFiles/dcn_graph.dir/builder.cpp.o"
  "CMakeFiles/dcn_graph.dir/builder.cpp.o.d"
  "CMakeFiles/dcn_graph.dir/graph.cpp.o"
  "CMakeFiles/dcn_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dcn_graph.dir/op.cpp.o"
  "CMakeFiles/dcn_graph.dir/op.cpp.o.d"
  "libdcn_graph.a"
  "libdcn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
