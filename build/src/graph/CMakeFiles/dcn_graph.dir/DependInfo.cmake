
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/blocks.cpp" "src/graph/CMakeFiles/dcn_graph.dir/blocks.cpp.o" "gcc" "src/graph/CMakeFiles/dcn_graph.dir/blocks.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/dcn_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/dcn_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dcn_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dcn_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/op.cpp" "src/graph/CMakeFiles/dcn_graph.dir/op.cpp.o" "gcc" "src/graph/CMakeFiles/dcn_graph.dir/op.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcn_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dcn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
