# Empty dependencies file for dcn_nn.
# This may be replaced when dependencies are built.
