
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/dcn_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/dcn_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/dcn_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/nn/CMakeFiles/dcn_nn.dir/gradcheck.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/gradcheck.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/dcn_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/dcn_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/dcn_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/dcn_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/dcn_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/dcn_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/dcn_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/nn/CMakeFiles/dcn_nn.dir/sgd.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/sgd.cpp.o.d"
  "/root/repo/src/nn/spp.cpp" "src/nn/CMakeFiles/dcn_nn.dir/spp.cpp.o" "gcc" "src/nn/CMakeFiles/dcn_nn.dir/spp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
