file(REMOVE_RECURSE
  "libdcn_nn.a"
)
