file(REMOVE_RECURSE
  "CMakeFiles/dcn_nn.dir/activations.cpp.o"
  "CMakeFiles/dcn_nn.dir/activations.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/dcn_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/conv2d.cpp.o"
  "CMakeFiles/dcn_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/gradcheck.cpp.o"
  "CMakeFiles/dcn_nn.dir/gradcheck.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/init.cpp.o"
  "CMakeFiles/dcn_nn.dir/init.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/linear.cpp.o"
  "CMakeFiles/dcn_nn.dir/linear.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/loss.cpp.o"
  "CMakeFiles/dcn_nn.dir/loss.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/module.cpp.o"
  "CMakeFiles/dcn_nn.dir/module.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/norm.cpp.o"
  "CMakeFiles/dcn_nn.dir/norm.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/pool.cpp.o"
  "CMakeFiles/dcn_nn.dir/pool.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/sequential.cpp.o"
  "CMakeFiles/dcn_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/sgd.cpp.o"
  "CMakeFiles/dcn_nn.dir/sgd.cpp.o.d"
  "CMakeFiles/dcn_nn.dir/spp.cpp.o"
  "CMakeFiles/dcn_nn.dir/spp.cpp.o.d"
  "libdcn_nn.a"
  "libdcn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
