# Empty dependencies file for dcn_core.
# This may be replaced when dependencies are built.
