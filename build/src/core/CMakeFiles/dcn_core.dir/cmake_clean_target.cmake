file(REMOVE_RECURSE
  "libdcn_core.a"
)
