file(REMOVE_RECURSE
  "CMakeFiles/dcn_core.dir/cli.cpp.o"
  "CMakeFiles/dcn_core.dir/cli.cpp.o.d"
  "CMakeFiles/dcn_core.dir/csv.cpp.o"
  "CMakeFiles/dcn_core.dir/csv.cpp.o.d"
  "CMakeFiles/dcn_core.dir/logging.cpp.o"
  "CMakeFiles/dcn_core.dir/logging.cpp.o.d"
  "CMakeFiles/dcn_core.dir/parallel.cpp.o"
  "CMakeFiles/dcn_core.dir/parallel.cpp.o.d"
  "CMakeFiles/dcn_core.dir/rng.cpp.o"
  "CMakeFiles/dcn_core.dir/rng.cpp.o.d"
  "CMakeFiles/dcn_core.dir/table.cpp.o"
  "CMakeFiles/dcn_core.dir/table.cpp.o.d"
  "libdcn_core.a"
  "libdcn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
