# Empty compiler generated dependencies file for dcn_ios.
# This may be replaced when dependencies are built.
