
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ios/executor.cpp" "src/ios/CMakeFiles/dcn_ios.dir/executor.cpp.o" "gcc" "src/ios/CMakeFiles/dcn_ios.dir/executor.cpp.o.d"
  "/root/repo/src/ios/gantt.cpp" "src/ios/CMakeFiles/dcn_ios.dir/gantt.cpp.o" "gcc" "src/ios/CMakeFiles/dcn_ios.dir/gantt.cpp.o.d"
  "/root/repo/src/ios/hios_lite.cpp" "src/ios/CMakeFiles/dcn_ios.dir/hios_lite.cpp.o" "gcc" "src/ios/CMakeFiles/dcn_ios.dir/hios_lite.cpp.o.d"
  "/root/repo/src/ios/schedule.cpp" "src/ios/CMakeFiles/dcn_ios.dir/schedule.cpp.o" "gcc" "src/ios/CMakeFiles/dcn_ios.dir/schedule.cpp.o.d"
  "/root/repo/src/ios/scheduler.cpp" "src/ios/CMakeFiles/dcn_ios.dir/scheduler.cpp.o" "gcc" "src/ios/CMakeFiles/dcn_ios.dir/scheduler.cpp.o.d"
  "/root/repo/src/ios/serialize.cpp" "src/ios/CMakeFiles/dcn_ios.dir/serialize.cpp.o" "gcc" "src/ios/CMakeFiles/dcn_ios.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simgpu/CMakeFiles/dcn_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcn_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dcn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/dcn_profiler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
