file(REMOVE_RECURSE
  "CMakeFiles/dcn_ios.dir/executor.cpp.o"
  "CMakeFiles/dcn_ios.dir/executor.cpp.o.d"
  "CMakeFiles/dcn_ios.dir/gantt.cpp.o"
  "CMakeFiles/dcn_ios.dir/gantt.cpp.o.d"
  "CMakeFiles/dcn_ios.dir/hios_lite.cpp.o"
  "CMakeFiles/dcn_ios.dir/hios_lite.cpp.o.d"
  "CMakeFiles/dcn_ios.dir/schedule.cpp.o"
  "CMakeFiles/dcn_ios.dir/schedule.cpp.o.d"
  "CMakeFiles/dcn_ios.dir/scheduler.cpp.o"
  "CMakeFiles/dcn_ios.dir/scheduler.cpp.o.d"
  "CMakeFiles/dcn_ios.dir/serialize.cpp.o"
  "CMakeFiles/dcn_ios.dir/serialize.cpp.o.d"
  "libdcn_ios.a"
  "libdcn_ios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_ios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
