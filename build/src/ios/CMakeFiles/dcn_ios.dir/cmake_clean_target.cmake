file(REMOVE_RECURSE
  "libdcn_ios.a"
)
