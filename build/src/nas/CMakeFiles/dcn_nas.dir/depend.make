# Empty dependencies file for dcn_nas.
# This may be replaced when dependencies are built.
