file(REMOVE_RECURSE
  "libdcn_nas.a"
)
