file(REMOVE_RECURSE
  "CMakeFiles/dcn_nas.dir/experiment.cpp.o"
  "CMakeFiles/dcn_nas.dir/experiment.cpp.o.d"
  "CMakeFiles/dcn_nas.dir/runner.cpp.o"
  "CMakeFiles/dcn_nas.dir/runner.cpp.o.d"
  "CMakeFiles/dcn_nas.dir/search_space.cpp.o"
  "CMakeFiles/dcn_nas.dir/search_space.cpp.o.d"
  "CMakeFiles/dcn_nas.dir/selection.cpp.o"
  "CMakeFiles/dcn_nas.dir/selection.cpp.o.d"
  "CMakeFiles/dcn_nas.dir/strategy.cpp.o"
  "CMakeFiles/dcn_nas.dir/strategy.cpp.o.d"
  "CMakeFiles/dcn_nas.dir/trial.cpp.o"
  "CMakeFiles/dcn_nas.dir/trial.cpp.o.d"
  "libdcn_nas.a"
  "libdcn_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
