file(REMOVE_RECURSE
  "libdcn_detect.a"
)
