
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/fixed_cnn.cpp" "src/detect/CMakeFiles/dcn_detect.dir/fixed_cnn.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/fixed_cnn.cpp.o.d"
  "/root/repo/src/detect/imageops.cpp" "src/detect/CMakeFiles/dcn_detect.dir/imageops.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/imageops.cpp.o.d"
  "/root/repo/src/detect/metrics.cpp" "src/detect/CMakeFiles/dcn_detect.dir/metrics.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/metrics.cpp.o.d"
  "/root/repo/src/detect/rcnn_lite.cpp" "src/detect/CMakeFiles/dcn_detect.dir/rcnn_lite.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/rcnn_lite.cpp.o.d"
  "/root/repo/src/detect/report.cpp" "src/detect/CMakeFiles/dcn_detect.dir/report.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/report.cpp.o.d"
  "/root/repo/src/detect/sppnet.cpp" "src/detect/CMakeFiles/dcn_detect.dir/sppnet.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/sppnet.cpp.o.d"
  "/root/repo/src/detect/sppnet_config.cpp" "src/detect/CMakeFiles/dcn_detect.dir/sppnet_config.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/sppnet_config.cpp.o.d"
  "/root/repo/src/detect/trainer.cpp" "src/detect/CMakeFiles/dcn_detect.dir/trainer.cpp.o" "gcc" "src/detect/CMakeFiles/dcn_detect.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/dcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dcn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
