file(REMOVE_RECURSE
  "CMakeFiles/dcn_detect.dir/fixed_cnn.cpp.o"
  "CMakeFiles/dcn_detect.dir/fixed_cnn.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/imageops.cpp.o"
  "CMakeFiles/dcn_detect.dir/imageops.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/metrics.cpp.o"
  "CMakeFiles/dcn_detect.dir/metrics.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/rcnn_lite.cpp.o"
  "CMakeFiles/dcn_detect.dir/rcnn_lite.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/report.cpp.o"
  "CMakeFiles/dcn_detect.dir/report.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/sppnet.cpp.o"
  "CMakeFiles/dcn_detect.dir/sppnet.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/sppnet_config.cpp.o"
  "CMakeFiles/dcn_detect.dir/sppnet_config.cpp.o.d"
  "CMakeFiles/dcn_detect.dir/trainer.cpp.o"
  "CMakeFiles/dcn_detect.dir/trainer.cpp.o.d"
  "libdcn_detect.a"
  "libdcn_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
