# Empty dependencies file for dcn_detect.
# This may be replaced when dependencies are built.
