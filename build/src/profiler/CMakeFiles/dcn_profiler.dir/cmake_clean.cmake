file(REMOVE_RECURSE
  "CMakeFiles/dcn_profiler.dir/recorder.cpp.o"
  "CMakeFiles/dcn_profiler.dir/recorder.cpp.o.d"
  "CMakeFiles/dcn_profiler.dir/report.cpp.o"
  "CMakeFiles/dcn_profiler.dir/report.cpp.o.d"
  "CMakeFiles/dcn_profiler.dir/trace.cpp.o"
  "CMakeFiles/dcn_profiler.dir/trace.cpp.o.d"
  "libdcn_profiler.a"
  "libdcn_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
