# Empty dependencies file for dcn_profiler.
# This may be replaced when dependencies are built.
