
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/recorder.cpp" "src/profiler/CMakeFiles/dcn_profiler.dir/recorder.cpp.o" "gcc" "src/profiler/CMakeFiles/dcn_profiler.dir/recorder.cpp.o.d"
  "/root/repo/src/profiler/report.cpp" "src/profiler/CMakeFiles/dcn_profiler.dir/report.cpp.o" "gcc" "src/profiler/CMakeFiles/dcn_profiler.dir/report.cpp.o.d"
  "/root/repo/src/profiler/trace.cpp" "src/profiler/CMakeFiles/dcn_profiler.dir/trace.cpp.o" "gcc" "src/profiler/CMakeFiles/dcn_profiler.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
