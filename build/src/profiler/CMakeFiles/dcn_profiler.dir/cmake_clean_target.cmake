file(REMOVE_RECURSE
  "libdcn_profiler.a"
)
