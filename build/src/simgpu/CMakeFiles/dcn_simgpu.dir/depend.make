# Empty dependencies file for dcn_simgpu.
# This may be replaced when dependencies are built.
