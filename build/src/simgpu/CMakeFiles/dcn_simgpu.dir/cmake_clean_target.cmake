file(REMOVE_RECURSE
  "libdcn_simgpu.a"
)
