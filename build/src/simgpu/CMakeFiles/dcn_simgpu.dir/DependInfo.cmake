
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/cost_model.cpp" "src/simgpu/CMakeFiles/dcn_simgpu.dir/cost_model.cpp.o" "gcc" "src/simgpu/CMakeFiles/dcn_simgpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/simgpu/device.cpp" "src/simgpu/CMakeFiles/dcn_simgpu.dir/device.cpp.o" "gcc" "src/simgpu/CMakeFiles/dcn_simgpu.dir/device.cpp.o.d"
  "/root/repo/src/simgpu/kernels.cpp" "src/simgpu/CMakeFiles/dcn_simgpu.dir/kernels.cpp.o" "gcc" "src/simgpu/CMakeFiles/dcn_simgpu.dir/kernels.cpp.o.d"
  "/root/repo/src/simgpu/memory.cpp" "src/simgpu/CMakeFiles/dcn_simgpu.dir/memory.cpp.o" "gcc" "src/simgpu/CMakeFiles/dcn_simgpu.dir/memory.cpp.o.d"
  "/root/repo/src/simgpu/spec.cpp" "src/simgpu/CMakeFiles/dcn_simgpu.dir/spec.cpp.o" "gcc" "src/simgpu/CMakeFiles/dcn_simgpu.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/dcn_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcn_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dcn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
