file(REMOVE_RECURSE
  "CMakeFiles/dcn_simgpu.dir/cost_model.cpp.o"
  "CMakeFiles/dcn_simgpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/dcn_simgpu.dir/device.cpp.o"
  "CMakeFiles/dcn_simgpu.dir/device.cpp.o.d"
  "CMakeFiles/dcn_simgpu.dir/kernels.cpp.o"
  "CMakeFiles/dcn_simgpu.dir/kernels.cpp.o.d"
  "CMakeFiles/dcn_simgpu.dir/memory.cpp.o"
  "CMakeFiles/dcn_simgpu.dir/memory.cpp.o.d"
  "CMakeFiles/dcn_simgpu.dir/spec.cpp.o"
  "CMakeFiles/dcn_simgpu.dir/spec.cpp.o.d"
  "libdcn_simgpu.a"
  "libdcn_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
