
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/crossings.cpp" "src/geo/CMakeFiles/dcn_geo.dir/crossings.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/crossings.cpp.o.d"
  "/root/repo/src/geo/dataset.cpp" "src/geo/CMakeFiles/dcn_geo.dir/dataset.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/dataset.cpp.o.d"
  "/root/repo/src/geo/hydrology.cpp" "src/geo/CMakeFiles/dcn_geo.dir/hydrology.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/hydrology.cpp.o.d"
  "/root/repo/src/geo/patch.cpp" "src/geo/CMakeFiles/dcn_geo.dir/patch.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/patch.cpp.o.d"
  "/root/repo/src/geo/ppm.cpp" "src/geo/CMakeFiles/dcn_geo.dir/ppm.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/ppm.cpp.o.d"
  "/root/repo/src/geo/raster.cpp" "src/geo/CMakeFiles/dcn_geo.dir/raster.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/raster.cpp.o.d"
  "/root/repo/src/geo/render.cpp" "src/geo/CMakeFiles/dcn_geo.dir/render.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/render.cpp.o.d"
  "/root/repo/src/geo/roads.cpp" "src/geo/CMakeFiles/dcn_geo.dir/roads.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/roads.cpp.o.d"
  "/root/repo/src/geo/streamstats.cpp" "src/geo/CMakeFiles/dcn_geo.dir/streamstats.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/streamstats.cpp.o.d"
  "/root/repo/src/geo/terrain.cpp" "src/geo/CMakeFiles/dcn_geo.dir/terrain.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/terrain.cpp.o.d"
  "/root/repo/src/geo/tiling.cpp" "src/geo/CMakeFiles/dcn_geo.dir/tiling.cpp.o" "gcc" "src/geo/CMakeFiles/dcn_geo.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
