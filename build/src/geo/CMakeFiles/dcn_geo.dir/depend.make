# Empty dependencies file for dcn_geo.
# This may be replaced when dependencies are built.
