file(REMOVE_RECURSE
  "CMakeFiles/dcn_geo.dir/crossings.cpp.o"
  "CMakeFiles/dcn_geo.dir/crossings.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/dataset.cpp.o"
  "CMakeFiles/dcn_geo.dir/dataset.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/hydrology.cpp.o"
  "CMakeFiles/dcn_geo.dir/hydrology.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/patch.cpp.o"
  "CMakeFiles/dcn_geo.dir/patch.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/ppm.cpp.o"
  "CMakeFiles/dcn_geo.dir/ppm.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/raster.cpp.o"
  "CMakeFiles/dcn_geo.dir/raster.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/render.cpp.o"
  "CMakeFiles/dcn_geo.dir/render.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/roads.cpp.o"
  "CMakeFiles/dcn_geo.dir/roads.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/streamstats.cpp.o"
  "CMakeFiles/dcn_geo.dir/streamstats.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/terrain.cpp.o"
  "CMakeFiles/dcn_geo.dir/terrain.cpp.o.d"
  "CMakeFiles/dcn_geo.dir/tiling.cpp.o"
  "CMakeFiles/dcn_geo.dir/tiling.cpp.o.d"
  "libdcn_geo.a"
  "libdcn_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
