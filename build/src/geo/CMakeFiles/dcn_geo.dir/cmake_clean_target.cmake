file(REMOVE_RECURSE
  "libdcn_geo.a"
)
