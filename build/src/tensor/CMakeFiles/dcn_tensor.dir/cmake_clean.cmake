file(REMOVE_RECURSE
  "CMakeFiles/dcn_tensor.dir/gemm.cpp.o"
  "CMakeFiles/dcn_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/dcn_tensor.dir/im2col.cpp.o"
  "CMakeFiles/dcn_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/dcn_tensor.dir/ops.cpp.o"
  "CMakeFiles/dcn_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/dcn_tensor.dir/reduce.cpp.o"
  "CMakeFiles/dcn_tensor.dir/reduce.cpp.o.d"
  "CMakeFiles/dcn_tensor.dir/serialize.cpp.o"
  "CMakeFiles/dcn_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/dcn_tensor.dir/shape.cpp.o"
  "CMakeFiles/dcn_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/dcn_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dcn_tensor.dir/tensor.cpp.o.d"
  "libdcn_tensor.a"
  "libdcn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
