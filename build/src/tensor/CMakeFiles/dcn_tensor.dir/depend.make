# Empty dependencies file for dcn_tensor.
# This may be replaced when dependencies are built.
