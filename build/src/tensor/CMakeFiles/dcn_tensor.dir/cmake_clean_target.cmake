file(REMOVE_RECURSE
  "libdcn_tensor.a"
)
