file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_batch_efficiency.dir/bench_fig6_batch_efficiency.cpp.o"
  "CMakeFiles/bench_fig6_batch_efficiency.dir/bench_fig6_batch_efficiency.cpp.o.d"
  "bench_fig6_batch_efficiency"
  "bench_fig6_batch_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_batch_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
