file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_layers.dir/bench_micro_layers.cpp.o"
  "CMakeFiles/bench_micro_layers.dir/bench_micro_layers.cpp.o.d"
  "bench_micro_layers"
  "bench_micro_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
