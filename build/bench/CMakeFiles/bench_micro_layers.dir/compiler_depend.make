# Empty compiler generated dependencies file for bench_micro_layers.
# This may be replaced when dependencies are built.
