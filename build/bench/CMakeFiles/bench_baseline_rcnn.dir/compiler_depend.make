# Empty compiler generated dependencies file for bench_baseline_rcnn.
# This may be replaced when dependencies are built.
