file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_rcnn.dir/bench_baseline_rcnn.cpp.o"
  "CMakeFiles/bench_baseline_rcnn.dir/bench_baseline_rcnn.cpp.o.d"
  "bench_baseline_rcnn"
  "bench_baseline_rcnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_rcnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
