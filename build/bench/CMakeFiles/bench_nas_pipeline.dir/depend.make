# Empty dependencies file for bench_nas_pipeline.
# This may be replaced when dependencies are built.
