file(REMOVE_RECURSE
  "CMakeFiles/bench_nas_pipeline.dir/bench_nas_pipeline.cpp.o"
  "CMakeFiles/bench_nas_pipeline.dir/bench_nas_pipeline.cpp.o.d"
  "bench_nas_pipeline"
  "bench_nas_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nas_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
