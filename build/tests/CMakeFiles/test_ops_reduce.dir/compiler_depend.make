# Empty compiler generated dependencies file for test_ops_reduce.
# This may be replaced when dependencies are built.
