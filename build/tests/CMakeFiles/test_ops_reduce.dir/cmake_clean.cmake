file(REMOVE_RECURSE
  "CMakeFiles/test_ops_reduce.dir/test_ops_reduce.cpp.o"
  "CMakeFiles/test_ops_reduce.dir/test_ops_reduce.cpp.o.d"
  "test_ops_reduce"
  "test_ops_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
