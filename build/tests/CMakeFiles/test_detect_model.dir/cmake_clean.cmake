file(REMOVE_RECURSE
  "CMakeFiles/test_detect_model.dir/test_detect_model.cpp.o"
  "CMakeFiles/test_detect_model.dir/test_detect_model.cpp.o.d"
  "test_detect_model"
  "test_detect_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
