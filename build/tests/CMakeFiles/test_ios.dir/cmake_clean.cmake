file(REMOVE_RECURSE
  "CMakeFiles/test_ios.dir/test_ios.cpp.o"
  "CMakeFiles/test_ios.dir/test_ios.cpp.o.d"
  "test_ios"
  "test_ios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
