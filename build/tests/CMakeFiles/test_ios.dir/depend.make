# Empty dependencies file for test_ios.
# This may be replaced when dependencies are built.
