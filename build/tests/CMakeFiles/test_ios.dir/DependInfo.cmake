
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ios.cpp" "tests/CMakeFiles/test_ios.dir/test_ios.cpp.o" "gcc" "tests/CMakeFiles/test_ios.dir/test_ios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nas/CMakeFiles/dcn_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/ios/CMakeFiles/dcn_ios.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/dcn_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dcn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dcn_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/dcn_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dcn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/dcn_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dcn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
