# Empty compiler generated dependencies file for test_shape_invariants.
# This may be replaced when dependencies are built.
