file(REMOVE_RECURSE
  "CMakeFiles/test_shape_invariants.dir/test_shape_invariants.cpp.o"
  "CMakeFiles/test_shape_invariants.dir/test_shape_invariants.cpp.o.d"
  "test_shape_invariants"
  "test_shape_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shape_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
