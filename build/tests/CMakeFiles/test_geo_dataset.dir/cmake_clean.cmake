file(REMOVE_RECURSE
  "CMakeFiles/test_geo_dataset.dir/test_geo_dataset.cpp.o"
  "CMakeFiles/test_geo_dataset.dir/test_geo_dataset.cpp.o.d"
  "test_geo_dataset"
  "test_geo_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
