# Empty dependencies file for test_geo_dataset.
# This may be replaced when dependencies are built.
