# Empty compiler generated dependencies file for test_detect_config.
# This may be replaced when dependencies are built.
