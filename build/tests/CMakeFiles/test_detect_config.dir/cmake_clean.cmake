file(REMOVE_RECURSE
  "CMakeFiles/test_detect_config.dir/test_detect_config.cpp.o"
  "CMakeFiles/test_detect_config.dir/test_detect_config.cpp.o.d"
  "test_detect_config"
  "test_detect_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
