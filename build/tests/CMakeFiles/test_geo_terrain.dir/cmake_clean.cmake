file(REMOVE_RECURSE
  "CMakeFiles/test_geo_terrain.dir/test_geo_terrain.cpp.o"
  "CMakeFiles/test_geo_terrain.dir/test_geo_terrain.cpp.o.d"
  "test_geo_terrain"
  "test_geo_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
