# Empty dependencies file for test_geo_terrain.
# This may be replaced when dependencies are built.
