file(REMOVE_RECURSE
  "CMakeFiles/test_core_util.dir/test_core_util.cpp.o"
  "CMakeFiles/test_core_util.dir/test_core_util.cpp.o.d"
  "test_core_util"
  "test_core_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
