# Empty dependencies file for test_core_util.
# This may be replaced when dependencies are built.
