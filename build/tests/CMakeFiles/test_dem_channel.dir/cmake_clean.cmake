file(REMOVE_RECURSE
  "CMakeFiles/test_dem_channel.dir/test_dem_channel.cpp.o"
  "CMakeFiles/test_dem_channel.dir/test_dem_channel.cpp.o.d"
  "test_dem_channel"
  "test_dem_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dem_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
