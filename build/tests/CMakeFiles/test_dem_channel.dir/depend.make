# Empty dependencies file for test_dem_channel.
# This may be replaced when dependencies are built.
