file(REMOVE_RECURSE
  "CMakeFiles/test_sgd.dir/test_sgd.cpp.o"
  "CMakeFiles/test_sgd.dir/test_sgd.cpp.o.d"
  "test_sgd"
  "test_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
