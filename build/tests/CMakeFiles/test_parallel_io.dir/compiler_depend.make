# Empty compiler generated dependencies file for test_parallel_io.
# This may be replaced when dependencies are built.
