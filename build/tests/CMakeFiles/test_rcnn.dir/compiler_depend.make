# Empty compiler generated dependencies file for test_rcnn.
# This may be replaced when dependencies are built.
