file(REMOVE_RECURSE
  "CMakeFiles/test_rcnn.dir/test_rcnn.cpp.o"
  "CMakeFiles/test_rcnn.dir/test_rcnn.cpp.o.d"
  "test_rcnn"
  "test_rcnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
