file(REMOVE_RECURSE
  "CMakeFiles/test_geo_hydrology.dir/test_geo_hydrology.cpp.o"
  "CMakeFiles/test_geo_hydrology.dir/test_geo_hydrology.cpp.o.d"
  "test_geo_hydrology"
  "test_geo_hydrology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_hydrology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
