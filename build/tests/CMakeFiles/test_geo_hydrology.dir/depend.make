# Empty dependencies file for test_geo_hydrology.
# This may be replaced when dependencies are built.
