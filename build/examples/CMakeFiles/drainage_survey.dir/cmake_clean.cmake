file(REMOVE_RECURSE
  "CMakeFiles/drainage_survey.dir/drainage_survey.cpp.o"
  "CMakeFiles/drainage_survey.dir/drainage_survey.cpp.o.d"
  "drainage_survey"
  "drainage_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drainage_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
