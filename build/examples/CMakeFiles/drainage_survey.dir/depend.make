# Empty dependencies file for drainage_survey.
# This may be replaced when dependencies are built.
