file(REMOVE_RECURSE
  "CMakeFiles/profile_inference.dir/profile_inference.cpp.o"
  "CMakeFiles/profile_inference.dir/profile_inference.cpp.o.d"
  "profile_inference"
  "profile_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
