# Empty compiler generated dependencies file for profile_inference.
# This may be replaced when dependencies are built.
