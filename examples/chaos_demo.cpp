// Chaos-engineering demo: the self-healing serve fleet riding out a seeded
// chaos schedule.
//
// Serves a bursty SLO-bound request stream on a mixed-precision replica
// fleet (fp32 primaries + an INT8 degraded pool) while a chaos schedule
// kills replicas for good and slows others by 8x mid-run. Every mitigation
// layer is on: health-weighted dispatch with circuit breakers, bounded
// respawn, crash re-dispatch, hedged requests racing the stragglers, and
// queue-pressure load shedding into the INT8 pool. Outputs the serving
// metrics with the fleet self-healing block, the replica health-transition
// timeline, a chrome trace whose instant events mark every death / respawn
// / hedge, and the completion log CSV with the served_precision column.
//
//   chaos_demo --chaos 'crash:at=5,kills=2;straggle:at=10,dur=5,factor=8'
#include <cstdio>
#include <fstream>

#include "core/table.hpp"
#include "core/cli.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "profiler/trace.hpp"
#include "serve/server.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("chaos_demo",
                 "self-healing replica fleet under a seeded chaos schedule");
  flags.add_int("input", 40, "input patch size");
  flags.add_double("duration", 20.0, "trace length, virtual seconds");
  flags.add_double("rate", 0.0, "offered req/s (0 = 2x serial capacity)");
  flags.add_int("max-batch", 8, "dynamic batcher size bound");
  flags.add_int("queue", 64, "admission queue capacity");
  flags.add_int("replicas", 6, "fleet size (last 2 serve INT8)");
  flags.add_double("deadline-ms", 50.0, "per-request SLO");
  flags.add_string("chaos",
                   "crash:at=5,kills=2;straggle:at=10,dur=5,count=1,factor=8",
                   "chaos schedule (crash:... / straggle:..., ';'-joined)");
  // Seed chosen so the default straggler wave hits a surviving replica
  // (the hedging path has something to race).
  flags.add_int("chaos-seed", 3, "chaos victim-draw seed");
  flags.add_string("trace", "chaos_trace.json", "chrome trace output path");
  flags.add_string("log", "chaos_log.csv", "completion log output path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  const int max_batch = static_cast<int>(flags.get_int("max-batch"));
  ios::IosOptions ios_options;
  ios_options.batch = max_batch;
  const ios::Schedule schedule = ios::optimize_schedule(g, spec, ios_options);

  simgpu::Device probe(spec);
  const double serial_latency = ios::measure_latency(g, schedule, probe, 1);
  double rate = flags.get_double("rate");
  if (rate <= 0.0) rate = 2.0 / serial_latency;

  serve::TrafficConfig traffic;
  traffic.seed = 42;
  traffic.duration = flags.get_double("duration");
  traffic.rate = rate;
  traffic.burst_factor = 1.0;
  traffic.burst_period = 5.0;
  traffic.burst_duty = 0.4;
  traffic.deadline = flags.get_double("deadline-ms") * 1e-3;
  const auto trace = serve::generate_trace(traffic);

  const int replicas = static_cast<int>(flags.get_int("replicas"));
  serve::ServerConfig config;
  config.batch.max_batch = max_batch;
  config.batch.timeout = 2.0e-3;
  config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue"));
  config.replicas = replicas;
  config.device = spec;
  // Mixed fleet: the last two replicas form the INT8 degraded pool the
  // load shedder steers into under queue pressure.
  if (replicas > 2) {
    config.replica_precisions.assign(static_cast<std::size_t>(replicas),
                                     simgpu::Precision::kFp32);
    for (int r = replicas - 2; r < replicas; ++r)
      config.replica_precisions[static_cast<std::size_t>(r)] =
          simgpu::Precision::kInt8;
    config.fleet.shed.enabled = true;
    config.fleet.shed.degrade_watermark = 0.5;
    config.fleet.shed.restore_watermark = 0.125;
  }
  config.fleet.hedge.enabled = true;
  config.fleet.hedge.factor = 2.0;
  config.fleet.chaos = serve::ChaosConfig::parse(
      flags.get_string("chaos"),
      static_cast<std::uint64_t>(flags.get_int("chaos-seed")));

  std::printf(
      "serving %zu requests over %.0fs (%.0f req/s base) on %d replicas\n"
      "chaos: %s\n\n",
      trace.size(), traffic.duration, rate, replicas,
      flags.get_string("chaos").c_str());

  profiler::Recorder recorder;
  serve::Server server(g, schedule, config, &recorder);
  const serve::ServingReport report = server.serve(trace);
  std::printf("%s\n", report.to_string().c_str());

  // Replica health timeline: every state transition the monitor logged, in
  // fire order — the textual twin of the chrome-trace instant events.
  TextTable timeline({"Time", "Replica", "Transition", "Reason"});
  for (const auto& t : server.health_transitions()) {
    timeline.add_row({format_double(t.time, 3) + " s",
                      std::to_string(t.replica),
                      std::string(serve::replica_state_name(t.from)) + " -> " +
                          serve::replica_state_name(t.to),
                      t.reason});
  }
  std::printf("Replica health timeline:\n%s\n",
              timeline.to_string().c_str());
  std::printf("%s\n", profiler::render_report(recorder).c_str());

  profiler::write_chrome_trace(recorder, flags.get_string("trace"));
  std::ofstream log(flags.get_string("log"));
  log << serve::Server::log_to_csv(server.log());
  std::printf("chrome trace written to %s (load in chrome://tracing)\n",
              flags.get_string("trace").c_str());
  std::printf("completion log written to %s\n",
              flags.get_string("log").c_str());
  return 0;
}
