// Crash-tolerant NAS campaign under injected GPU faults.
//
// Demonstrates the robustness layer end to end: a seeded fault plan makes
// the simulated A5500 misbehave (transient launch failures, slow or
// corrupted PCIe transfers, spurious allocation failures, hung syncs), a
// flaky evaluator crashes on some trials, and the runner still completes
// the campaign — retrying transient faults, recording hard failures as
// TrialStatus::failed, and checkpointing the database so an interrupted
// campaign resumes from disk instead of restarting.
//
//   fault_tolerant_search --trials 12 --checkpoint campaign.csv
//       --faults 'launch:p=0.2;memcpy_slow:p=0.1,factor=6'
//   # kill it mid-run, then add --resume to continue from the checkpoint.
#include <cstdio>
#include <string>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"
#include "simgpu/faults.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("fault_tolerant_search",
                 "NAS campaign that survives injected GPU faults and "
                 "evaluator crashes");
  flags.add_int("trials", 12, "number of NAS trials");
  flags.add_int("seed", 2023, "search strategy seed");
  // ~18 launches per inference: p=0.03 faults roughly every other
  // measurement run, which the session retries absorb most of the time.
  flags.add_string("faults", "launch:p=0.03;memcpy_slow:p=0.05,factor=6",
                   "fault plan spec: kind:key=value[,k=v];... with kinds "
                   "launch, memcpy_corrupt, memcpy_slow, alloc, sync_hang");
  flags.add_int("fault-seed", 7, "fault injector seed");
  flags.add_int("retries", 2,
                "extra whole-trial attempts after a retryable fault");
  flags.add_int("crash-every", 5,
                "evaluator throws on every Nth trial (0 = never)");
  flags.add_string("checkpoint", "fault_campaign.csv",
                   "checkpoint CSV (written every trial; empty disables)");
  flags.add_bool("resume", false, "resume from --checkpoint if it exists");
  if (!flags.parse(argc, argv)) return 0;

  nas::RunnerConfig config;
  config.max_trials = static_cast<int>(flags.get_int("trials"));
  config.input_size = 40;
  config.faults = simgpu::FaultPlan::parse(
      flags.get_string("faults"),
      static_cast<std::uint64_t>(flags.get_int("fault-seed")));
  config.trial_retries = static_cast<int>(flags.get_int("retries"));
  config.resilient.retry.max_attempts = 4;
  // Watchdog for sync_hang faults: without it a hang only stalls the
  // virtual clock; with it the session gets a TimeoutError and resets.
  config.resilient.sync_timeout = 0.05;
  config.checkpoint_path = flags.get_string("checkpoint");
  std::printf("fault plan: %zu rule(s), injector seed %llu\n",
              config.faults.rules.size(),
              static_cast<unsigned long long>(config.faults.seed));

  // A cheap proxy evaluator that "crashes" periodically, standing in for
  // a training job that dies (OOM, preemption, NaN loss, ...).
  const auto crash_every = flags.get_int("crash-every");
  int evaluations = 0;
  const nas::Evaluator evaluator = [&](const detect::SppNetConfig& model) {
    ++evaluations;
    if (crash_every > 0 && evaluations % crash_every == 0) {
      throw Error("evaluator crash (simulated training failure) on call " +
                  std::to_string(evaluations));
    }
    // Larger models score slightly higher: enough signal for selection.
    return 0.8 + 0.1 / (1.0 + 1e6 / static_cast<double>(
                                  model.parameter_count()));
  };

  nas::RandomSearchStrategy strategy(
      nas::SearchSpace{}, static_cast<std::uint64_t>(flags.get_int("seed")));

  nas::TrialDatabase resume_from;
  if (flags.get_bool("resume") && !config.checkpoint_path.empty()) {
    resume_from = nas::load_checkpoint(config.checkpoint_path);
    std::printf("resuming: %zu trial(s) restored from %s\n",
                resume_from.size(), config.checkpoint_path.c_str());
  }

  const nas::TrialDatabase db =
      nas::run_multi_trial(strategy, evaluator, config, resume_from);

  TextTable table({"Trial", "Architecture", "Status", "Attempts", "AP",
                   "Throughput"});
  for (const nas::Trial& t : db.trials()) {
    table.add_row({std::to_string(t.index), t.point.to_string(),
                   nas::trial_status_name(t.status),
                   std::to_string(t.attempts),
                   t.ok() ? format_percent(t.metrics.average_precision) : "-",
                   t.ok() ? format_double(t.metrics.throughput, 0) + " img/s"
                          : t.failure_reason.substr(0, 32)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("campaign: %zu trials, %zu failed (excluded from selection)\n",
              db.size(), db.num_failed());

  if (const auto best = db.best_by_accuracy()) {
    std::printf("best surviving trial: %d [%s], AP %s\n", best->index,
                best->point.to_string().c_str(),
                format_percent(best->metrics.average_precision).c_str());
  }
  if (!config.checkpoint_path.empty()) {
    std::printf("checkpoint in %s — rerun with --resume after an "
                "interruption\n",
                config.checkpoint_path.c_str());
  }
  return 0;
}
