// Inspect inference graphs, blocks, and IOS schedules for the Table-1
// models: the graph dump, the extracted branched blocks, the sequential
// baseline, the DP-optimized schedule, and their modeled costs.
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/blocks.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/gantt.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("schedule_explorer", "inspect IOS schedules per model");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("batch", 1, "batch size the schedule is optimized for");
  flags.add_bool("dot", false, "print graphviz dot of the first graph");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const std::int64_t batch = flags.get_int("batch");
  bool printed_dot = false;

  for (const detect::SppNetConfig& config : detect::table1_models()) {
    const graph::Graph g =
        graph::build_inference_graph(config, flags.get_int("input"));
    std::printf("=== %s ===\n%s\n", config.name.c_str(),
                config.to_notation().c_str());
    std::printf("%s", g.to_string().c_str());
    if (flags.get_bool("dot") && !printed_dot) {
      std::printf("\n%s\n", g.to_dot().c_str());
      printed_dot = true;
    }

    const auto blocks = graph::extract_blocks(g);
    std::printf("\nblocks: %zu", blocks.size());
    for (const auto& block : blocks) {
      if (block.branched) {
        std::printf(" [branched: %zu ops, %zu branches]", block.ops.size(),
                    graph::block_branches(g, block).size());
      }
    }
    std::printf("\n\n");

    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule seq = ios::sequential_schedule(g);
    const ios::Schedule opt = ios::optimize_schedule(g, spec, options);
    std::printf("optimized schedule:\n%s\n", opt.to_string(g).c_str());
    std::printf("%s\n", ios::render_gantt(g, spec, opt).c_str());

    simgpu::Device d_seq(spec);
    simgpu::Device d_opt(spec);
    const double t_seq = ios::measure_latency(g, seq, d_seq, batch);
    const double t_opt = ios::measure_latency(g, opt, d_opt, batch);
    TextTable table({"Schedule", "Stages", "Modeled cost", "Measured latency"});
    table.add_row({"sequential", std::to_string(seq.num_stages()),
                   format_ms(ios::schedule_cost(g, spec, seq, batch) * 1e3),
                   format_ms(t_seq * 1e3)});
    table.add_row({"IOS", std::to_string(opt.num_stages()),
                   format_ms(ios::schedule_cost(g, spec, opt, batch) * 1e3),
                   format_ms(t_opt * 1e3)});
    std::printf("%s", table.to_string().c_str());
    std::printf("speedup: %.2fx\n\n", t_seq / t_opt);
  }
  return 0;
}
