// Whole-watershed scan with the early-exit cascade (src/scan).
//
// End-to-end demo of the production scanning shape: train the full
// SPP-Net detector, run the mini NAS campaign that picks the tiny int8
// screener, calibrate the stage-1 confidence threshold on a held-out
// validation watershed (cheapest operating point within the accuracy
// budget), then scan a fresh watershed — screener over every tile, full
// model only on the survivors, detections mapped to world coordinates
// and deduplicated across tile overlap. Finishes with the serving view:
// both stages as serve::Server pools on the virtual clock, reporting
// cascade tiles/sec against the full-model-only baseline.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/sppnet.hpp"
#include "detect/sppnet_config.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/scheduler.hpp"
#include "scan/calibrate.hpp"
#include "scan/cascade.hpp"
#include "scan/pipeline.hpp"
#include "scan/screener.hpp"
#include "simgpu/spec.hpp"

namespace {

void write_file(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  os << body;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("watershed_scan",
                 "early-exit cascade scan of a synthetic watershed");
  flags.add_int("tile", 48, "scan tile size (pixels)");
  flags.add_double("overlap", 0.25, "tile overlap fraction");
  flags.add_int("terrain", 384, "training world edge (pixels)");
  flags.add_int("scan-terrain", 512, "validation/scan watershed edge");
  flags.add_int("epochs", 10, "full-model training epochs");
  flags.add_int("screener-epochs", 4, "screener proxy-training epochs");
  flags.add_int("seed", 2022, "master seed (data + weights)");
  flags.add_int("jobs", 0, "tensor-engine threads (0 = default)");
  flags.add_double("ap-budget", 1.0, "allowed cascade AP drop, points");
  flags.add_string("csv-prefix", "watershed_scan",
                   "prefix for exported CSVs (empty = no export)");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::kWarn);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::int64_t tile = flags.get_int("tile");
  const auto spec = simgpu::a5500_spec();

  // --- Train the full-accuracy detector on tile-sized patches -------------
  geo::DatasetConfig data_config;
  data_config.seed = seed;
  data_config.patch_size = tile;
  data_config.terrain.rows = data_config.terrain.cols =
      static_cast<int>(flags.get_int("terrain"));
  // Scan tiles are grid-aligned, so a crossing lands anywhere in the
  // tile — train with jitter spanning the tile, not the centered-patch
  // default, or localization never generalizes to the scan distribution.
  data_config.positive_jitter = tile / 2 - 4;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);
  std::printf("training set: %zu patches (%zu positive)\n", dataset.size(),
              dataset.num_positives());

  const detect::SppNetConfig full_config = detect::sppnet_candidate2();
  Rng rng(seed + 7);
  detect::SppNet full(full_config, rng);
  detect::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.get_int("epochs"));
  train_config.verbose = false;
  (void)detect::train_detector(full, dataset, split, train_config);
  const double full_patch_ap =
      detect::evaluate_detector(full, dataset, split.test).average_precision;
  std::printf("full model %s: held-out AP %.3f\n\n", full_config.name.c_str(),
              full_patch_ap);

  // --- Mini NAS campaign for the int8 screener ----------------------------
  scan::ScreenerSearchConfig screener_config;
  screener_config.runner.input_size = tile;
  screener_config.runner.latency_batch = 64;
  screener_config.runner.device = spec;
  screener_config.runner.verbose = false;
  screener_config.train.epochs =
      static_cast<int>(flags.get_int("screener-epochs"));
  screener_config.train.verbose = false;
  screener_config.seed = seed + 100;
  scan::ScreenerSelection screener =
      scan::select_screener(dataset, split, screener_config);
  std::printf("screener campaign: %zu trials -> %s at %s "
              "(AP %.3f, %.0f img/s profiled)\n\n",
              screener.database.trials().size(),
              screener.config.name.c_str(),
              screener.chosen.precision == simgpu::Precision::kInt8 ? "int8"
                                                                    : "fp32",
              screener.chosen.metrics.average_precision,
              screener.chosen.metrics.throughput);

  // --- Calibrate the threshold on a held-out validation watershed ---------
  // Sparse roads: watersheds are overwhelmingly negative, the regime the
  // cascade exists for.
  geo::DatasetConfig water_config = data_config;
  water_config.terrain.rows = water_config.terrain.cols =
      static_cast<int>(flags.get_int("scan-terrain"));
  water_config.roads.spacing = 256;
  water_config.roads.density = 0.4;

  scan::CascadeOptions scan_options;
  scan_options.tile_size = tile;
  scan_options.overlap = flags.get_double("overlap");
  scan_options.jobs = static_cast<int>(flags.get_int("jobs"));
  geo::GeoTransform transform;  // 1 m/pixel at the origin (NAIP-like)

  Rng validation_rng(seed + 1);
  const geo::World validation =
      geo::synthesize_world(water_config, validation_rng);
  scan::CascadeOptions calibrate_options = scan_options;
  calibrate_options.threshold = 0.0;
  calibrate_options.evaluate_all = true;
  const scan::ScanResult validation_scan =
      scan::scan_watershed(validation.photo, transform, validation.crossings,
                           *screener.model, full, calibrate_options);

  scan::CalibratorOptions calibrator;
  calibrator.max_ap_drop_points = flags.get_double("ap-budget");
  // Relative stage costs; the defaults (full model ~10x the screener per
  // tile) are close enough for the demo — bench_cascade measures both.
  const scan::CalibrationResult calibration =
      scan::calibrate_threshold(validation_scan.scores, calibrator);
  std::printf("calibration: threshold %.6g keeps cascade AP %.3f "
              "(full %.3f, budget %.1f pts) at %.1f%% survivors\n\n",
              calibration.chosen.threshold, calibration.chosen.cascade_ap,
              calibration.full_ap, calibrator.max_ap_drop_points,
              calibration.chosen.survivor_fraction * 100.0);

  // --- Scan a fresh watershed at the calibrated threshold -----------------
  Rng scan_rng(seed + 2);
  geo::DatasetConfig scan_world_config = water_config;
  scan_world_config.seed = seed + 2;
  const geo::World watershed =
      geo::synthesize_world(scan_world_config, scan_rng);
  scan::CascadeOptions final_options = scan_options;
  final_options.threshold = calibration.chosen.threshold;
  const scan::ScanResult result =
      scan::scan_watershed(watershed.photo, transform, watershed.crossings,
                           *screener.model, full, final_options);

  std::printf("scan: %lld tiles, %.1f%% negative; %lld survivors "
              "(%.1f%%) reached the full model\n",
              static_cast<long long>(result.tiles),
              result.negative_fraction * 100.0,
              static_cast<long long>(result.survivors),
              result.survivor_fraction * 100.0);
  TextTable detections({"Tile", "World x", "World y", "Conf", "Matched"});
  for (const scan::ScanDetection& d : result.detections) {
    detections.add_row({std::to_string(d.tile), format_double(d.world_x, 1),
                        format_double(d.world_y, 1),
                        format_double(d.confidence, 3),
                        d.matched ? "yes" : "no"});
  }
  std::printf("%lld ground-truth crossings, %zu confirmed detections:\n%s\n",
              static_cast<long long>(watershed.crossings.size()),
              result.detections.size(), detections.to_string().c_str());

  // --- Serving view: per-stage pools on the virtual clock -----------------
  const graph::Graph screener_graph = graph::optimize_graph(
      graph::build_inference_graph(screener.config, tile));
  const graph::Graph full_graph = graph::optimize_graph(
      graph::build_inference_graph(full_config, tile));
  const bool int8_screener =
      screener.chosen.precision == simgpu::Precision::kInt8;

  scan::StagePlan stage1;
  stage1.graph = &screener_graph;
  ios::IosOptions stage1_ios;
  stage1_ios.batch = 64;
  if (int8_screener) stage1_ios.precision = simgpu::Precision::kInt8;
  stage1.schedule = ios::optimize_schedule(screener_graph, spec, stage1_ios);
  stage1.server.pool = "screener";
  stage1.server.batch.max_batch = 64;
  stage1.server.batch.timeout = 2.0e-4;  // offline drain: short flush
  stage1.server.device = spec;
  if (int8_screener) stage1.server.precision = simgpu::Precision::kInt8;

  scan::StagePlan stage2;
  stage2.graph = &full_graph;
  ios::IosOptions stage2_ios;
  stage2_ios.batch = 8;
  stage2.schedule = ios::optimize_schedule(full_graph, spec, stage2_ios);
  stage2.server.pool = "full";
  stage2.server.batch.max_batch = 8;
  stage2.server.batch.timeout = 2.0e-4;
  stage2.server.device = spec;

  std::vector<bool> survived;
  survived.reserve(result.scores.size());
  for (const scan::TileScore& score : result.scores) {
    survived.push_back(score.survived);
  }
  const scan::CascadeServingReport serving =
      scan::simulate_cascade_serving(stage1, stage2, survived, 0.0);
  const serve::ServingReport baseline =
      scan::simulate_single_stage(stage2, result.tiles, 0.0);
  const double baseline_tps =
      baseline.makespan > 0.0
          ? static_cast<double>(result.tiles) / baseline.makespan
          : 0.0;

  std::printf("%s\n%s\n", serving.stage1.to_string().c_str(),
              serving.stage2.to_string().c_str());
  std::printf("cascade: %.0f tiles/s  full-only baseline: %.0f tiles/s  "
              "speedup: %.2fx\n",
              serving.tiles_per_sec, baseline_tps,
              baseline_tps > 0.0 ? serving.tiles_per_sec / baseline_tps
                                 : 0.0);

  const std::string prefix = flags.get_string("csv-prefix");
  if (!prefix.empty()) {
    write_file(prefix + "_tiles.csv", scan::scan_to_csv(result));
    write_file(prefix + "_detections.csv", scan::detections_to_csv(result));
    write_file(prefix + "_sweep.csv", scan::sweep_to_csv(calibration));
  }
  return 0;
}
