// Quickstart: the full pipeline in one small program.
//
//   1. Synthesize a watershed and clip a drainage-crossing patch dataset.
//   2. Train an SPP-Net detector (paper hyper-parameters, reduced scale).
//   3. Evaluate average precision on the held-out split.
//   4. Build the inference graph, optimize it with IOS, and compare
//      sequential vs optimized latency on the simulated RTX A5500.
//
// Runs in about a minute on one CPU core. Scale up with the flags.
#include <cstdio>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("quickstart", "train + schedule a drainage-crossing SPP-Net");
  flags.add_int("seed", 2022, "global random seed");
  flags.add_int("patch", 48, "patch side length in cells (paper: 100)");
  flags.add_int("worlds", 1, "number of synthetic watersheds");
  flags.add_int("epochs", 16, "training epochs");
  if (!flags.parse(argc, argv)) return 0;

  // 1. Data.
  geo::DatasetConfig data_config;
  data_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  data_config.num_worlds = static_cast<int>(flags.get_int("worlds"));
  data_config.patch_size = flags.get_int("patch");
  data_config.terrain.rows = data_config.terrain.cols = 512;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  std::printf("dataset: %zu patches (%zu positive, %zu negative)\n",
              dataset.size(), dataset.num_positives(),
              dataset.num_negatives());

  // 2. Train the paper's original SPP-Net at the paper's settings
  //    (SGD lr 0.005 / momentum 0.9 / weight decay 5e-4, batch 20).
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const detect::SppNetConfig model_config = detect::original_sppnet();
  detect::SppNet model(model_config, rng);
  std::printf("model: %s\n  %s\n  %lld parameters\n",
              model_config.name.c_str(), model_config.to_notation().c_str(),
              static_cast<long long>(model.num_parameters()));

  const geo::Split split = dataset.split(0.8, 3);
  detect::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.get_int("epochs"));
  const auto history =
      detect::train_detector(model, dataset, split, train_config);

  // 3. Metrics.
  std::printf("\nheld-out evaluation (%zu patches):\n", split.test.size());
  std::printf("  average precision: %s\n",
              format_percent(history.final_eval.average_precision).c_str());
  std::printf("  accuracy @0.5:     %s\n",
              format_percent(history.final_eval.accuracy).c_str());
  std::printf("  mean IoU:          %.3f\n", history.final_eval.mean_iou);

  // 4. Inference scheduling on the simulated A5500.
  const graph::Graph g = graph::build_inference_graph(
      model_config, data_config.patch_size);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule seq = ios::sequential_schedule(g);
  const ios::Schedule opt = ios::optimize_schedule(g, spec);

  TextTable table({"Schedule", "Stages", "Latency (batch 1)", "Throughput"});
  for (const auto& [name, schedule] :
       {std::pair{"sequential", &seq}, std::pair{"IOS-optimized", &opt}}) {
    simgpu::Device device(spec);
    const double latency = ios::measure_latency(g, *schedule, device, 1);
    table.add_row({name, std::to_string(schedule->num_stages()),
                   format_ms(latency * 1e3),
                   format_double(1.0 / latency, 0) + " img/s"});
  }
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
