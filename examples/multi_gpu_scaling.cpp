// Multi-GPU scaling study (the paper's future-work direction, §4.1/§8.3).
//
// Uses the HIOS-lite latency models to answer two questions the paper
// defers to future work:
//   1. How does data-parallel replication scale SPP-Net #2's throughput
//      across 1..8 simulated A5500s, per batch size?
//   2. Does HIOS-style inter-GPU branch placement pay off for SPP-Net's
//      branched (SPP) block? (Spoiler, quantified: no — the branches are
//      microseconds of work against tens-of-microseconds transfers.)
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/hios_lite.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("multi_gpu_scaling", "HIOS-lite multi-GPU what-if study");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("max_gpus", 8, "largest replica count to evaluate");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  std::printf("model: %s on up to %lld simulated %s\n\n",
              model.name.c_str(),
              static_cast<long long>(flags.get_int("max_gpus")),
              spec.name.c_str());

  // --- Data-parallel scaling.
  std::printf("1. data-parallel throughput (img/s)\n\n");
  std::vector<std::string> header{"Batch"};
  for (int gpus = 1; gpus <= flags.get_int("max_gpus"); gpus *= 2) {
    header.push_back(std::to_string(gpus) + " GPU" + (gpus > 1 ? "s" : ""));
  }
  TextTable scaling(header);
  for (std::int64_t batch : {1, 8, 32, 64, 256}) {
    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);
    std::vector<std::string> row{std::to_string(batch)};
    for (int gpus = 1; gpus <= flags.get_int("max_gpus"); gpus *= 2) {
      ios::MultiGpuConfig config;
      config.num_gpus = gpus;
      const double latency =
          ios::data_parallel_latency(g, schedule, spec, batch, config);
      row.push_back(format_double(batch / latency, 0));
    }
    scaling.add_row(std::move(row));
  }
  std::printf("%s", scaling.to_string().c_str());
  std::printf(
      "\nreading: replication only pays once the per-replica shard is large "
      "enough to amortize fixed per-inference costs.\n\n");

  // --- Branch placement.
  std::printf("2. HIOS-style branch placement of the SPP block (batch 1)\n\n");
  ios::IosOptions options;
  const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);
  TextTable branch_table({"Placement", "Modeled latency"});
  branch_table.add_row(
      {"single GPU (IOS)",
       format_ms(ios::schedule_cost(g, spec, schedule, 1) * 1e3)});
  for (int gpus : {2, 3}) {
    ios::MultiGpuConfig config;
    config.num_gpus = gpus;
    branch_table.add_row(
        {"branches across " + std::to_string(gpus) + " GPUs",
         format_ms(ios::branch_parallel_latency(g, schedule, spec, 1,
                                                config) *
                   1e3)});
  }
  std::printf("%s", branch_table.to_string().c_str());
  std::printf(
      "\nreading: SPP branches are ~microseconds of device work, so peer "
      "activation transfers make inter-GPU placement strictly worse — "
      "which is why HIOS targets models with heavyweight parallel "
      "branches.\n");
  return 0;
}
