// End-to-end serving demo: NAS-selected detector behind a dynamic batcher.
//
// Chains the whole library: a small NAS campaign scores SPP-Net variants
// and the accuracy-constrained rule picks the deployment model; IOS
// optimizes its inference schedule for the serving batch size; then a
// synthetic diurnal + bursty request stream (default 60 virtual seconds)
// is served with SLO deadlines, bounded admission, replicated resilient
// sessions, and an injected fault plan. Outputs the serving metrics block,
// the profiler report, a chrome trace (chrome://tracing) with queue-depth
// and batch-size counter tracks, and the canonical per-request completion
// log CSV.
//
//   serve_demo --duration 60 --replicas 2 --faults 'launch:p=0.02'
#include <cstdio>
#include <fstream>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"
#include "profiler/report.hpp"
#include "profiler/trace.hpp"
#include "serve/server.hpp"
#include "simgpu/device.hpp"
#include "simgpu/faults.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("serve_demo",
                 "serve a NAS-selected model under synthetic traffic with "
                 "SLOs and injected faults");
  flags.add_int("trials", 8, "NAS trials for model selection");
  flags.add_int("seed", 2023, "NAS strategy seed");
  flags.add_int("input", 40, "input patch size");
  flags.add_double("accuracy", 0.85, "accuracy constraint for selection");
  flags.add_double("duration", 60.0, "trace length, virtual seconds");
  flags.add_double("rate", 0.0, "offered req/s (0 = 2x serial capacity)");
  flags.add_int("max-batch", 8, "dynamic batcher size bound");
  flags.add_double("timeout-ms", 2.0, "batching timeout, milliseconds");
  flags.add_int("queue", 64, "admission queue capacity");
  flags.add_int("replicas", 2, "model replicas");
  flags.add_double("deadline-ms", 50.0, "per-request SLO (0 disables)");
  flags.add_string("faults", "launch:p=0.01",
                   "fault plan spec (empty = fault-free)");
  flags.add_int("fault-seed", 7, "fault injector seed");
  flags.add_string("trace", "serve_trace.json", "chrome trace output path");
  flags.add_string("log", "serve_log.csv", "completion log output path");
  if (!flags.parse(argc, argv)) return 0;

  // 1. NAS campaign with a cheap accuracy proxy; the runner measures real
  //    (simulated) latency/throughput per trial.
  nas::RunnerConfig nas_config;
  nas_config.max_trials = static_cast<int>(flags.get_int("trials"));
  nas_config.input_size = flags.get_int("input");
  const nas::Evaluator evaluator = [](const detect::SppNetConfig& model) {
    return 0.8 + 0.1 / (1.0 + 1e6 / static_cast<double>(
                                  model.parameter_count()));
  };
  nas::RandomSearchStrategy strategy(
      nas::SearchSpace{}, static_cast<std::uint64_t>(flags.get_int("seed")));
  const nas::TrialDatabase db =
      nas::run_multi_trial(strategy, evaluator, nas_config);

  auto selected = nas::select_constrained(db, flags.get_double("accuracy"));
  if (!selected) selected = db.best_by_accuracy();
  if (!selected) {
    std::printf("no NAS trial succeeded; nothing to deploy\n");
    return 1;
  }
  const detect::SppNetConfig model = nas::materialize(selected->point);
  std::printf("deploying trial %d [%s]: AP %s, %s img/s in NAS harness\n",
              selected->index, selected->point.to_string().c_str(),
              format_percent(selected->metrics.average_precision).c_str(),
              format_double(selected->metrics.throughput, 0).c_str());

  // 2. IOS schedule for the serving batch size.
  const auto spec = simgpu::a5500_spec();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  const int max_batch = static_cast<int>(flags.get_int("max-batch"));
  ios::IosOptions ios_options;
  ios_options.batch = max_batch;
  const ios::Schedule schedule = ios::optimize_schedule(g, spec, ios_options);

  simgpu::Device probe(spec);
  const double serial_latency = ios::measure_latency(g, schedule, probe, 1);
  double rate = flags.get_double("rate");
  if (rate <= 0.0) rate = 2.0 / serial_latency;

  // 3. Sixty seconds of bursty, diurnally modulated traffic.
  serve::TrafficConfig traffic;
  traffic.seed = 42;
  traffic.duration = flags.get_double("duration");
  traffic.rate = rate;
  traffic.burst_factor = 1.0;
  traffic.burst_period = 5.0;
  traffic.burst_duty = 0.2;
  traffic.diurnal_amplitude = 0.4;
  traffic.diurnal_period = traffic.duration;
  traffic.deadline = flags.get_double("deadline-ms") * 1e-3;
  const auto trace = serve::generate_trace(traffic);
  std::printf("trace: %zu requests over %.0fs (%.0f req/s base rate)\n\n",
              trace.size(), traffic.duration, rate);

  // 4. Serve it with replicated resilient sessions and injected faults.
  serve::ServerConfig config;
  config.batch.max_batch = max_batch;
  config.batch.timeout = flags.get_double("timeout-ms") * 1e-3;
  config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue"));
  config.replicas = static_cast<int>(flags.get_int("replicas"));
  config.device = spec;
  config.resilient.retry.max_attempts = 8;
  config.resilient.retry.base_backoff = 1.0e-4;
  config.resilient.retry.max_backoff = 1.0e-2;
  config.resilient.retry.jitter = 0.2;
  if (!flags.get_string("faults").empty()) {
    config.faults = simgpu::FaultPlan::parse(
        flags.get_string("faults"),
        static_cast<std::uint64_t>(flags.get_int("fault-seed")));
  }

  profiler::Recorder recorder;
  serve::Server server(g, schedule, config, &recorder);
  const serve::ServingReport report = server.serve(trace);
  std::printf("%s\n", report.to_string().c_str());
  std::printf("%s\n", profiler::render_report(recorder).c_str());

  profiler::write_chrome_trace(recorder, flags.get_string("trace"));
  std::ofstream log(flags.get_string("log"));
  log << serve::Server::log_to_csv(server.log());
  std::printf("chrome trace written to %s (load in chrome://tracing)\n",
              flags.get_string("trace").c_str());
  std::printf("completion log written to %s\n",
              flags.get_string("log").c_str());
  return 0;
}
