// Watershed survey: the paper's application end to end.
//
// Synthesizes a West-Fork-Big-Blue-style watershed, demonstrates the
// "digital dam" problem (Figure 1) on its DEM, trains an SPP-Net on
// crossing patches, then scans the whole orthophoto with the trained
// detector plus the region-proposal baseline and reports how many
// ground-truth culverts each recovers. Writes PPM/PGM previews of the
// scene and Figure-4-style patch samples into --outdir.
#include <cstdio>
#include <filesystem>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/metrics.hpp"
#include "detect/rcnn_lite.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "geo/hydrology.hpp"
#include "geo/ppm.hpp"
#include "geo/streamstats.hpp"
#include "geo/tiling.hpp"

namespace {

using namespace dcn;

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("drainage_survey", "full watershed survey + detection scan");
  flags.add_int("seed", 2022, "global random seed");
  flags.add_int("size", 512, "watershed side length in cells");
  flags.add_int("patch", 48, "detector patch size");
  flags.add_int("epochs", 18, "detector training epochs");
  flags.add_string("outdir", "survey_out", "directory for image previews");
  if (!flags.parse(argc, argv)) return 0;

  geo::DatasetConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.terrain.rows = config.terrain.cols = flags.get_int("size");
  config.patch_size = flags.get_int("patch");

  // --- The watershed itself.
  Rng world_rng(config.seed);
  const geo::World world = geo::synthesize_world(config, world_rng);
  std::printf("watershed: %lldx%lld cells, %zu roads, %zu drainage crossings\n",
              static_cast<long long>(world.dem.rows()),
              static_cast<long long>(world.dem.cols()), world.roads.size(),
              world.crossings.size());

  // --- Digital dams (Figure 1): road embankments force DEM processing to
  //     pond water until it spills over the dam. The artificial fill
  //     volume required to drain the dammed DEM, versus the breached DEM,
  //     quantifies the artifact the paper's culvert detection removes.
  {
    auto fill_volume = [](const geo::Raster& dem) {
      const geo::Raster filled = geo::fill_depressions(dem);
      double volume = 0.0;
      for (std::int64_t i = 0; i < dem.size(); ++i) {
        volume += static_cast<double>(filled.data()[i]) - dem.data()[i];
      }
      return volume;  // cell-meters of artificial fill
    };
    const double dammed_fill = fill_volume(world.dem_raw);
    const double breached_fill = fill_volume(world.dem);
    std::printf(
        "digital dams: draining the embankment DEM needs %.0f m^3 of "
        "artificial fill (water ponded behind digital dams); culvert "
        "breaching cuts that to %.0f m^3 (%.1fx less)\n",
        dammed_fill, breached_fill,
        dammed_fill / std::max(1.0, breached_fill));
  }

  // --- Stream-network analytics (realism report for the synthetic basin).
  {
    const geo::Raster filled = geo::fill_depressions(world.dem);
    const auto dirs = geo::flow_directions(filled);
    const auto stats = geo::watershed_stats(world.dem, world.streams, dirs,
                                            world.crossings);
    std::printf(
        "stream network: max Strahler order %d, %lld sources, drainage "
        "density %.4f, relief %.1f m, %.1f crossings per 1000 stream "
        "cells\n",
        stats.max_strahler_order, static_cast<long long>(stats.sources),
        stats.drainage_density, stats.relief, stats.crossing_density);
  }

  // --- Previews.
  const std::string outdir = flags.get_string("outdir");
  std::filesystem::create_directories(outdir);
  geo::write_ppm_rgb(outdir + "/orthophoto.ppm", world.photo);
  geo::write_pgm(outdir + "/dem.pgm", world.dem);
  geo::write_pgm(outdir + "/accumulation.pgm", world.accumulation);
  geo::write_pgm(outdir + "/streams.pgm", world.streams);

  // --- Dataset + training (Figure-4-style samples are dumped as PPM).
  const auto dataset = geo::DrainageDataset::synthesize(config);
  for (std::size_t i = 0; i < std::min<std::size_t>(6, dataset.size()); ++i) {
    const auto& sample = dataset.sample(i);
    geo::write_patch_ppm(outdir + "/sample" + std::to_string(i) + ".ppm",
                         sample.image,
                         sample.label > 0 ? sample.box.data() : nullptr);
  }
  std::printf("previews written to %s/\n", outdir.c_str());

  Rng rng(config.seed + 1);
  detect::SppNet model(detect::original_sppnet(), rng);
  const geo::Split split = dataset.split(0.8, 3);
  detect::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.get_int("epochs"));
  const auto history =
      detect::train_detector(model, dataset, split, train_config);
  std::printf("detector trained: AP %s on held-out patches\n",
              format_percent(history.final_eval.average_precision).c_str());

  // --- Survey scan: tile the watershed (50% overlap, georeferenced) and
  //     detect crossings in each tile.
  const std::int64_t patch = config.patch_size;
  geo::GeoTransform transform;  // synthetic scene at a local origin, 1 m GSD
  const auto tiles = geo::make_tiles(world.dem.rows(), world.dem.cols(),
                                     patch, 0.5, transform);
  std::size_t sppnet_hits = 0;
  std::size_t rcnn_hits = 0;
  detect::RcnnLiteDetector rcnn(model, detect::ProposalConfig{});
  std::vector<bool> found_spp(world.crossings.size(), false);
  std::vector<bool> found_rcnn(world.crossings.size(), false);

  for (const geo::Tile& tile : tiles) {
    const Tensor image = geo::extract_tile(world.photo, tile);
    Tensor batch(Shape{1, 4, patch, patch});
    std::copy(image.data(), image.data() + image.numel(), batch.data());
    const auto preds = model.predict(batch);
    auto mark = [&](std::vector<bool>& found, const float box[4]) {
      const auto [wx, wy] = geo::detection_to_world(tile, box, transform);
      const auto [pr, pc] = transform.world_to_pixel(wx, wy);
      for (std::size_t k = 0; k < world.crossings.size(); ++k) {
        if (std::abs(world.crossings[k].row - pr) < patch / 3.0 &&
            std::abs(world.crossings[k].col - pc) < patch / 3.0) {
          found[k] = true;
        }
      }
    };
    if (preds[0].confidence > 0.5f) {
      ++sppnet_hits;
      mark(found_spp, preds[0].box.data());
    }
    const detect::Prediction rp = rcnn.detect(image);
    if (rp.confidence > 0.25f) {
      ++rcnn_hits;
      mark(found_rcnn, rp.box.data());
    }
  }

  auto recall = [&](const std::vector<bool>& found) {
    std::size_t hits = 0;
    for (bool f : found) hits += f ? 1 : 0;
    return static_cast<double>(hits) /
           static_cast<double>(std::max<std::size_t>(1, found.size()));
  };
  TextTable table({"Detector", "Tiles flagged", "Crossing recall"});
  table.add_row({"SPP-Net (sliding window)", std::to_string(sppnet_hits),
                 format_percent(recall(found_spp))});
  table.add_row({"R-CNN lite (proposals + SPP scorer)",
                 std::to_string(rcnn_hits),
                 format_percent(recall(found_rcnn))});
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
