// nsys-style profiling of CNN inference on the simulated GPU (§7).
//
// Equivalent of `nsys profile --stats=true python IOS_Model.py`: runs a
// measurement loop of IOS-scheduled inferences at the chosen batch size on
// the simulated RTX A5500 and prints the three statistics views (CUDA API
// usage, kernel categories, memory operations).
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("profile_inference", "nsys-like profile of SPP-Net inference");
  flags.add_int("batch", 1, "inference batch size");
  flags.add_int("iterations", 10, "profiled inference iterations");
  flags.add_string("model", "spp2",
                   "model: original | spp1 | spp2 | spp3 | <notation>");
  flags.add_int("input", 100, "input patch size");
  flags.add_bool("sequential", false, "profile the sequential schedule");
  if (!flags.parse(argc, argv)) return 0;

  detect::SppNetConfig config;
  const std::string name = flags.get_string("model");
  if (name == "original") config = detect::original_sppnet();
  else if (name == "spp1") config = detect::sppnet_candidate1();
  else if (name == "spp2") config = detect::sppnet_candidate2();
  else if (name == "spp3") config = detect::sppnet_candidate3();
  else config = detect::parse_notation(name);

  const graph::Graph g =
      graph::build_inference_graph(config, flags.get_int("input"));
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = flags.get_bool("sequential")
                                     ? ios::sequential_schedule(g)
                                     : ios::optimize_schedule(g, spec);
  std::printf("model: %s\nschedule (%zu stages, width %zu):\n%s\n",
              config.to_notation().c_str(), schedule.num_stages(),
              schedule.max_concurrency(), schedule.to_string(g).c_str());

  profiler::Recorder recorder;
  simgpu::Device device(spec, &recorder);
  ios::InferenceSession session(g, schedule, device);
  session.initialize();
  const std::int64_t batch = flags.get_int("batch");
  double last_latency = 0.0;
  for (int i = 0; i < flags.get_int("iterations"); ++i) {
    last_latency = session.run(batch).latency_seconds;
  }
  std::printf("device: %s\nbatch %lld: %s per inference, %s per image\n",
              spec.name.c_str(), static_cast<long long>(batch),
              format_ms(last_latency * 1e3).c_str(),
              format_ms(last_latency * 1e3 / batch, 4).c_str());
  std::printf("device memory: %.1f MiB live of %.0f GiB\n\n",
              device.memory().live_bytes() / 1048576.0,
              spec.dram_bytes / 1073741824.0);
  std::printf("%s", profiler::render_report(recorder).c_str());
  return 0;
}
