// Resource-aware neural architecture search (the paper's Figure-5 loop).
//
// Random multi-trial search over the §4.2 space; each sampled architecture
// is trained on the synthetic drainage dataset (the FunctionalEvaluator),
// timed under its IOS-optimized schedule on the simulated A5500, and the
// final model is selected by maximizing throughput subject to the accuracy
// constraint a(n) > A (§5.4). Trial results are exported as CSV.
#include <cstdio>
#include <fstream>
#include <memory>

#include "core/error.hpp"

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/quantized_sppnet.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "nas/experiment.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("nas_search", "accuracy-constrained NAS for SPP-Net");
  flags.add_int("trials", 6, "number of NAS trials");
  flags.add_int("epochs", 10, "training epochs per trial");
  flags.add_int("patch", 40, "patch size for trial training");
  flags.add_double("threshold", 0.5, "accuracy constraint A (AP must exceed)");
  flags.add_int("seed", 2023, "search + data seed");
  flags.add_string("strategy", "random", "random | evolution | grid");
  flags.add_string("csv", "nas_trials.csv", "trial export path");
  flags.add_string("experiment", "nas_experiment.txt",
                   "experiment record (reloadable via nas::load_experiment)");
  flags.add_string("faults", "",
                   "fault plan, e.g. 'launch:p=0.05;memcpy_slow:at=3' "
                   "(empty = no injection)");
  flags.add_int("fault-seed", 2023, "fault injector seed");
  flags.add_int("trial-retries", 1,
                "extra whole-trial attempts after a retryable fault");
  flags.add_string("checkpoint", "",
                   "checkpoint CSV path (enables periodic checkpointing)");
  flags.add_bool("resume", false,
                 "resume the campaign from --checkpoint if it exists");
  flags.add_int("jobs", 1,
                "worker threads evaluating trials concurrently (random/grid "
                "stay byte-identical to --jobs 1)");
  flags.add_bool("int8", false,
                 "expand selection over {fp32, int8} deployments "
                 "(post-training quantization)");
  flags.add_string("selection-csv", "nas_selection.csv",
                   "precision-selection export path (with --int8)");
  if (!flags.parse(argc, argv)) return 0;

  // Shared dataset across trials (as the paper trains every candidate on
  // the same samples).
  geo::DatasetConfig data_config;
  data_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  data_config.patch_size = flags.get_int("patch");
  data_config.terrain.rows = data_config.terrain.cols = 512;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);
  std::printf("dataset: %zu patches (%zu positive)\n", dataset.size(),
              dataset.num_positives());

  // The FunctionalEvaluator: real (reduced-schedule) training.
  const int epochs = static_cast<int>(flags.get_int("epochs"));
  nas::Evaluator evaluator = [&](const detect::SppNetConfig& config) {
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")) + 7);
    detect::SppNet model(config, rng);
    detect::TrainConfig train_config;
    train_config.epochs = epochs;
    train_config.verbose = false;
    const auto history =
        detect::train_detector(model, dataset, split, train_config);
    return history.final_eval.average_precision;
  };

  nas::SearchSpace space;  // the paper's §4.2 space
  std::unique_ptr<nas::ExplorationStrategy> strategy;
  const std::string strategy_name = flags.get_string("strategy");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  if (strategy_name == "random") {
    strategy = std::make_unique<nas::RandomSearchStrategy>(space, seed);
  } else if (strategy_name == "evolution") {
    strategy = std::make_unique<nas::EvolutionStrategy>(space, seed);
  } else if (strategy_name == "grid") {
    strategy = std::make_unique<nas::GridSearchStrategy>(space);
  } else {
    throw ConfigError("unknown --strategy '" + strategy_name + "'");
  }
  nas::RunnerConfig runner_config;
  runner_config.max_trials = static_cast<int>(flags.get_int("trials"));
  runner_config.input_size = data_config.patch_size;
  runner_config.faults = simgpu::FaultPlan::parse(
      flags.get_string("faults"),
      static_cast<std::uint64_t>(flags.get_int("fault-seed")));
  runner_config.trial_retries =
      static_cast<int>(flags.get_int("trial-retries"));
  runner_config.checkpoint_path = flags.get_string("checkpoint");
  runner_config.jobs = static_cast<int>(flags.get_int("jobs"));
  if (runner_config.jobs > 1) set_num_threads(1);
  nas::TrialDatabase resume_from;
  if (flags.get_bool("resume") && !runner_config.checkpoint_path.empty()) {
    resume_from = nas::load_checkpoint(runner_config.checkpoint_path);
    if (resume_from.size() > 0) {
      std::printf("resuming from %s: %zu completed trial(s)\n",
                  runner_config.checkpoint_path.c_str(), resume_from.size());
    }
  }
  const nas::TrialDatabase db =
      nas::run_multi_trial(*strategy, evaluator, runner_config, resume_from);
  if (db.num_failed() > 0) {
    std::printf("%zu trial(s) failed and were excluded from selection\n",
                db.num_failed());
  }

  TextTable table({"Trial", "Architecture", "AP", "Optimized latency",
                   "Throughput"});
  for (const nas::Trial& t : db.trials()) {
    table.add_row({std::to_string(t.index), t.point.to_string(),
                   format_percent(t.metrics.average_precision),
                   format_ms(t.metrics.optimized_latency * 1e3),
                   format_double(t.metrics.throughput, 0) + " img/s"});
  }
  std::printf("\n%s", table.to_string().c_str());

  const double threshold = flags.get_double("threshold");
  const auto best = nas::select_constrained(db, threshold);
  if (best) {
    std::printf(
        "\nselected (maximize e(n) s.t. a(n) > %.2f): trial %d [%s]\n"
        "  AP %s, %s per image, %.0f img/s\n",
        threshold, best->index, best->point.to_string().c_str(),
        format_percent(best->metrics.average_precision).c_str(),
        format_ms(best->metrics.optimized_latency * 1e3).c_str(),
        best->metrics.throughput);
  } else {
    std::printf("\nno trial satisfies AP > %.2f — rerun with more trials or "
                "epochs, or lower --threshold\n",
                threshold);
  }

  if (flags.get_bool("int8")) {
    // Expand every successful trial into {fp32, int8} deployment options:
    // re-profile the graph with int8 kernel descriptors (and an int8-aware
    // IOS schedule), re-train the float model with the evaluator's seed,
    // quantize it on a seeded calibration split, and re-score AP.
    nas::RunnerConfig int8_config = runner_config;
    int8_config.precision = simgpu::Precision::kInt8;
    int8_config.verbose = false;
    const nas::QuantizeEvaluator quantize = [&](const nas::Trial& trial) {
      const detect::SppNetConfig model_config = nas::materialize(trial.point);
      nas::TrialMetrics metrics = nas::profile_architecture(
          model_config, int8_config, trial.index, 1);
      Rng rng(seed + 7);  // reproduces the evaluator's trained weights
      detect::SppNet model(model_config, rng);
      detect::TrainConfig train_config;
      train_config.epochs = epochs;
      train_config.verbose = false;
      (void)detect::train_detector(model, dataset, split, train_config);
      std::vector<std::size_t> calibration;
      for (const std::int64_t i : detect::calibration_split(
               static_cast<std::int64_t>(split.train.size()), 8, seed)) {
        calibration.push_back(split.train[static_cast<std::size_t>(i)]);
      }
      detect::QuantizedSppNet quantized(
          model, dataset.make_batch(calibration).images);
      metrics.average_precision =
          detect::evaluate_detector(quantized, dataset, split.test)
              .average_precision;
      return metrics;
    };
    const auto candidates = nas::expand_precisions(db, quantize);
    const auto chosen = nas::select_constrained_precision(candidates,
                                                          threshold);
    if (chosen) {
      std::printf(
          "\nprecision-expanded selection (AP > %.2f): trial %d [%s] @ %s\n"
          "  AP %s, %s per image, %.0f img/s\n",
          threshold, chosen->trial.index,
          chosen->trial.point.to_string().c_str(),
          simgpu::precision_name(chosen->precision),
          format_percent(chosen->metrics.average_precision).c_str(),
          format_ms(chosen->metrics.optimized_latency * 1e3).c_str(),
          chosen->metrics.throughput);
    } else {
      std::printf("\nno (model, precision) pair satisfies AP > %.2f\n",
                  threshold);
    }
    std::ofstream selection_csv(flags.get_string("selection-csv"));
    selection_csv << nas::precision_selection_csv(candidates, chosen);
    std::printf("precision selection exported to %s\n",
                flags.get_string("selection-csv").c_str());
  }

  std::printf("\nPareto front (accuracy vs throughput):\n");
  for (const nas::Trial& t : nas::pareto_front(db)) {
    std::printf("  AP %s @ %.0f img/s  [%s]\n",
                format_percent(t.metrics.average_precision).c_str(),
                t.metrics.throughput, t.point.to_string().c_str());
  }

  std::ofstream csv(flags.get_string("csv"));
  csv << db.to_csv();
  nas::save_experiment(db, flags.get_string("experiment"));
  std::printf("\ntrials exported to %s; experiment record in %s\n",
              flags.get_string("csv").c_str(),
              flags.get_string("experiment").c_str());
  return 0;
}
