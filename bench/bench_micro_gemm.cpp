// Micro benchmarks: the blocked SGEMM vs the reference triple loop, at the
// shapes the SPP-Net workload actually hits (im2col GEMMs and FC layers).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/rng.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace dcn;

std::vector<float> random_matrix(std::int64_t n, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void BM_GemmBlocked(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    matmul(false, false, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * n * k, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void BM_GemmReference(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    sgemm_reference(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                    0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * n * k, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

// conv1 im2col GEMM at 100x100: 64 x (4*3*3=36) x 10000.
// conv3 im2col GEMM at 25x25: 256 x 1152 x 625.
// SPP-Net #2 FC: 1 x 7680 -> 4096 (as 4096 x 7680 weight times vector).
BENCHMARK(BM_GemmBlocked)
    ->Args({64, 10000, 36})
    ->Args({256, 625, 1152})
    ->Args({4096, 1, 7680})
    ->Args({256, 256, 256})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmReference)
    ->Args({256, 256, 256})
    ->Unit(benchmark::kMillisecond);

void BM_GemmTransposedB(benchmark::State& state) {
  // The Linear layer's x * W^T pattern.
  const std::int64_t batch = state.range(0);
  const std::int64_t in = 7680;
  const std::int64_t out = 4096;
  Rng rng(1);
  const auto x = random_matrix(batch * in, rng);
  const auto w = random_matrix(out * in, rng);
  std::vector<float> y(static_cast<std::size_t>(batch * out));
  for (auto _ : state) {
    matmul(false, true, batch, out, in, x.data(), w.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * batch * out * in, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

BENCHMARK(BM_GemmTransposedB)->Arg(1)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace
