// Micro benchmarks: the blocked SGEMM vs the reference triple loop and the
// frozen pre-vectorization scalar kernel, at the shapes the SPP-Net workload
// actually hits (im2col GEMMs and FC layers). Every bench reports GFLOP/s;
// the 512^3 shape with a thread sweep is the acceptance benchmark for the
// parallel + vectorized engine (export with
//   bench_micro_gemm --benchmark_filter=512 \
//     --benchmark_out=BENCH_gemm.json --benchmark_out_format=json).
#include <benchmark/benchmark.h>

#include <array>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/registry.hpp"
#include "tensor/kernels/tuner.hpp"

namespace {

using namespace dcn;

std::vector<float> random_matrix(std::int64_t n, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

void add_gflops(benchmark::State& state, std::int64_t m, std::int64_t n,
                std::int64_t k) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * n * k, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

// Pins the engine thread count for one benchmark run, restoring the
// process-wide default afterwards so later benches are unaffected.
struct ThreadGuard {
  explicit ThreadGuard(int n) { set_num_threads(n); }
  ~ThreadGuard() { set_num_threads(0); }
};

void BM_GemmBlocked(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    matmul(false, false, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

void BM_GemmReference(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    sgemm_reference(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
                    0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

// The exact pre-PR kernel at its original compile flags — the honest
// baseline the >=4x acceptance criterion is measured against.
void BM_GemmScalarBaseline(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    sgemm_blocked_scalar(false, false, m, n, k, 1.0f, a.data(), k, b.data(),
                         n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
  // Label with the variant the blocked engine dispatches to on this CPU, so
  // a report line "ScalarBaseline ... dispatched=avx2" says exactly which
  // pair the speedup ratio compares.
  state.SetLabel("dispatched=" +
                 kernels::KernelRegistry::global().active().name);
}

// Thread-scaling sweep of the new engine; range(3) is the engine thread
// count. Output is bit-identical across the sweep (see test_gemm).
void BM_GemmThreads(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  ThreadGuard guard(static_cast<int>(state.range(3)));
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    matmul(false, false, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

// Fused bias+ReLU epilogue vs a separate post-GEMM sweep, at the conv
// lowering shape [oc x k] * [k x ohw] with a per-row bias.
void BM_GemmFusedBiasRelu(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const auto bias = random_matrix(m, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  GemmEpilogue ep;
  ep.row_bias = bias.data();
  ep.relu = true;
  for (auto _ : state) {
    sgemm_ex(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
             c.data(), n, ep);
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

void BM_GemmUnfusedBiasRelu(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const std::int64_t n = state.range(1);
  const std::int64_t k = state.range(2);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  const auto bias = random_matrix(m, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    matmul(false, false, m, n, k, a.data(), b.data(), c.data());
    for (std::int64_t i = 0; i < m; ++i) {
      float* row = c.data() + i * n;
      const float bv = bias[static_cast<std::size_t>(i)];
      for (std::int64_t j = 0; j < n; ++j) {
        const float v = row[j] + bv;
        row[j] = v > 0.0f ? v : 0.0f;
      }
    }
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

// conv1 im2col GEMM at 100x100: 64 x (4*3*3=36) x 10000.
// conv3 im2col GEMM at 25x25: 256 x 1152 x 625.
// SPP-Net #2 FC: 1 x 7680 -> 4096 (as 4096 x 7680 weight times vector).
// 512^3: the acceptance shape for the vectorized engine.
BENCHMARK(BM_GemmBlocked)
    ->Args({64, 10000, 36})
    ->Args({256, 625, 1152})
    ->Args({4096, 1, 7680})
    ->Args({256, 256, 256})
    ->Args({512, 512, 512})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmReference)
    ->Args({256, 256, 256})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmScalarBaseline)
    ->Args({256, 256, 256})
    ->Args({512, 512, 512})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmThreads)
    ->Args({512, 512, 512, 1})
    ->Args({512, 512, 512, 2})
    ->Args({512, 512, 512, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmFusedBiasRelu)
    ->Args({64, 10000, 36})
    ->Args({256, 625, 1152})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_GemmUnfusedBiasRelu)
    ->Args({64, 10000, 36})
    ->Args({256, 625, 1152})
    ->Unit(benchmark::kMillisecond);

void BM_GemmTransposedB(benchmark::State& state) {
  // The Linear layer's x * W^T pattern.
  const std::int64_t batch = state.range(0);
  const std::int64_t in = 7680;
  const std::int64_t out = 4096;
  Rng rng(1);
  const auto x = random_matrix(batch * in, rng);
  const auto w = random_matrix(out * in, rng);
  std::vector<float> y(static_cast<std::size_t>(batch * out));
  for (auto _ : state) {
    matmul(false, true, batch, out, in, x.data(), w.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  add_gflops(state, batch, out, in);
}

BENCHMARK(BM_GemmTransposedB)->Arg(1)->Arg(20)->Unit(benchmark::kMillisecond);

// Per-variant A/B: the same blocked driver forced onto each compiled-in
// SIMD variant (generic / sse41 / avx2 / avx512). Variants the executing
// CPU cannot run are skipped with an error label instead of faulting.
// Registered dynamically because the variant list is a build/runtime
// property, not a compile-time constant of this file.
void run_variant_bench(benchmark::State& state, const std::string& name,
                       std::int64_t m, std::int64_t n, std::int64_t k) {
  auto& registry = kernels::KernelRegistry::global();
  if (!registry.variant_supported(name)) {
    state.SkipWithError(("variant not supported on this CPU: " + name).c_str());
    return;
  }
  kernels::KernelRegistry::ScopedForce force(name);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  // Warmup outside the timed loop: the first call on a cold cache runs the
  // autotuner, which would otherwise dominate the first iteration.
  matmul(false, false, m, n, k, a.data(), b.data(), c.data());
  for (auto _ : state) {
    matmul(false, false, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

// Tile sweep over every micro tile the *active* variant registers, each
// forced through the tuner (macro blocking stays the tuner default). The
// spread between the best and worst rows is the headroom the autotuner
// captures; outputs are bit-identical across the whole sweep.
void run_tile_bench(benchmark::State& state, std::int64_t mr, std::int64_t nr,
                    std::int64_t m, std::int64_t n, std::int64_t k) {
  kernels::TileTuner::ScopedForcedTile force(mr, nr);
  Rng rng(1);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  matmul(false, false, m, n, k, a.data(), b.data(), c.data());
  for (auto _ : state) {
    matmul(false, false, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  add_gflops(state, m, n, k);
}

int register_kernel_benches() {
  auto& registry = kernels::KernelRegistry::global();
  for (const auto& name : registry.variant_names()) {
    for (const auto& shape :
         {std::array<std::int64_t, 3>{512, 512, 512},
          std::array<std::int64_t, 3>{256, 625, 1152}}) {
      const std::string bench_name =
          "BM_GemmVariant/" + name + "/" + std::to_string(shape[0]) + "x" +
          std::to_string(shape[1]) + "x" + std::to_string(shape[2]);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [name, shape](benchmark::State& state) {
            run_variant_bench(state, name, shape[0], shape[1], shape[2]);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  const auto& active = registry.active();
  for (const auto& tile : active.sgemm) {
    const std::string bench_name =
        "BM_GemmTileSweep/" + active.name + "/" + std::to_string(tile.mr) +
        "x" + std::to_string(tile.nr);
    const std::int64_t mr = tile.mr;
    const std::int64_t nr = tile.nr;
    benchmark::RegisterBenchmark(bench_name.c_str(),
                                 [mr, nr](benchmark::State& state) {
                                   run_tile_bench(state, mr, nr, 512, 512,
                                                  512);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
  return 0;
}

[[maybe_unused]] const int kKernelBenchesRegistered = register_kernel_benches();

}  // namespace
