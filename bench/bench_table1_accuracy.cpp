// Reproduces Table 1: average precision of the four SPP-Net architectures.
//
// Paper setup (§6.1): ~2022 clipped NAIP patches, 80/20 split, SGD with
// lr 0.005 / wd 5e-4 / momentum 0.9, batch 20, NVIDIA RTX A5500.
// This reproduction: synthetic drainage patches (see src/geo), the same
// optimizer and split, CPU training at reduced scale (defaults: 56-px
// patches, ~2-3 hundred samples, 36 epochs). Absolute APs land in the same
// 90s regime; the claim under test is that all four SPP-Net variants reach
// high AP and that the NAS-refined candidates are competitive with or
// better than the hand-designed original.
//
// Scale up toward the paper with: --patch 100 --worlds 6 --epochs 60
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/time.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_table1_accuracy", "reproduce Table 1 (AP per model)");
  flags.add_int("seed", 2022, "data + init seed");
  flags.add_int("patch", 56, "patch side length (paper: 100)");
  flags.add_int("worlds", 3, "synthetic watersheds to pool");
  flags.add_int("epochs", 36, "training epochs per model");
  flags.add_double("culvert_contrast", 0.55,
                   "culvert visual salience in [0,1]; lower = harder");
  flags.add_double("noise", 0.04, "sensor noise std dev");
  flags.add_double("occlusion", 0.5,
                   "fraction of crossings partially hidden by tree canopy");
  flags.add_string("csv", "table1.csv", "CSV export path");
  flags.add_bool("quick", false, "tiny run for smoke-testing (~2 min)");
  if (!flags.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  geo::DatasetConfig data_config;
  data_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  data_config.num_worlds = static_cast<int>(flags.get_int("worlds"));
  data_config.patch_size = flags.get_int("patch");
  data_config.terrain.rows = data_config.terrain.cols = 512;
  // Difficulty calibration: the defaults put the four models in the
  // paper's 90s-AP regime rather than saturating at 100%.
  data_config.render.culvert_contrast =
      flags.get_double("culvert_contrast");
  data_config.render.sensor_noise = flags.get_double("noise");
  data_config.render.canopy_occlusion = flags.get_double("occlusion");
  int epochs = static_cast<int>(flags.get_int("epochs"));
  if (flags.get_bool("quick")) {
    data_config.num_worlds = 1;
    data_config.patch_size = 32;
    epochs = 10;
  }

  WallTimer timer;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);
  std::printf(
      "Table 1 — AP of SPP-Net architectures\n"
      "dataset: %zu synthetic patches (%zu positive), %lld px, "
      "80/20 split, SGD(0.005, 5e-4, 0.9), batch 20, %d epochs\n\n",
      dataset.size(), dataset.num_positives(),
      static_cast<long long>(data_config.patch_size), epochs);

  const double paper_ap[4] = {0.9500, 0.9610, 0.9670, 0.9740};
  TextTable table({"Model", "Hyper-parameters", "AP (paper)", "AP (ours)",
                   "Accuracy", "Mean IoU"});
  CsvWriter csv({"model", "notation", "paper_ap", "our_ap", "accuracy",
                 "mean_iou", "final_loss"});

  const auto models = detect::table1_models();
  for (std::size_t i = 0; i < models.size(); ++i) {
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")) + 1);
    detect::SppNet model(models[i], rng);
    detect::TrainConfig train_config;
    train_config.epochs = epochs;
    train_config.verbose = false;
    const auto history =
        detect::train_detector(model, dataset, split, train_config);
    const auto& eval = history.final_eval;
    table.add_row({models[i].name, models[i].to_notation(),
                   format_percent(paper_ap[i], 2),
                   format_percent(eval.average_precision, 2),
                   format_percent(eval.accuracy, 2),
                   format_double(eval.mean_iou, 3)});
    csv.add_row({models[i].name, models[i].to_notation(),
                 format_double(paper_ap[i], 4),
                 format_double(eval.average_precision, 4),
                 format_double(eval.accuracy, 4),
                 format_double(eval.mean_iou, 4),
                 format_double(history.epochs.back().mean_loss, 4)});
    std::printf("[%zu/4] %s done (%.0f s elapsed)\n", i + 1,
                models[i].name.c_str(), timer.seconds());
  }

  std::printf("\n%s", table.to_string().c_str());
  csv.write(flags.get_string("csv"));
  std::printf("\nCSV written to %s (total %.0f s)\n",
              flags.get_string("csv").c_str(), timer.seconds());
  std::printf(
      "\nNote: absolute APs depend on the synthetic dataset difficulty and "
      "the reduced CPU training budget; the paper-facing claim is the "
      "regime (>90%% AP) and the competitiveness of the NAS candidates.\n");
  return 0;
}
