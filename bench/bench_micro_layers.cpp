// Micro benchmarks for the nn layers at SPP-Net shapes: conv forward and
// backward, pooling, the SPP layer across pyramid depths, and a full
// forward/backward step of the original model.
#include <benchmark/benchmark.h>

#include "core/rng.hpp"
#include "detect/sppnet.hpp"
#include "nn/conv2d.hpp"
#include "nn/pool.hpp"
#include "nn/spp.hpp"

namespace {

using namespace dcn;

void BM_Conv2dForward(benchmark::State& state) {
  const std::int64_t channels_in = state.range(0);
  const std::int64_t channels_out = state.range(1);
  const std::int64_t size = state.range(2);
  Rng rng(1);
  Conv2d conv(channels_in, channels_out, 3, 1, rng);
  Tensor x(Shape{1, channels_in, size, size}, 0.5f);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * channels_in * 9 * channels_out * size * size,
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

// The three trunk convolutions of the Table-1 models at 100-px input.
BENCHMARK(BM_Conv2dForward)
    ->Args({4, 64, 100})
    ->Args({64, 128, 50})
    ->Args({128, 256, 25})
    ->Unit(benchmark::kMillisecond);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(1);
  Conv2d conv(64, 128, 3, 1, rng);
  Tensor x(Shape{1, 64, 50, 50}, 0.5f);
  Tensor y = conv.forward(x);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Unit(benchmark::kMillisecond);

void BM_MaxPool(benchmark::State& state) {
  MaxPool2d pool(2, 2);
  Tensor x(Shape{1, 64, 100, 100}, 0.5f);
  for (auto _ : state) {
    Tensor y = pool.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MaxPool)->Unit(benchmark::kMillisecond);

void BM_SppForward(benchmark::State& state) {
  const auto levels =
      spp_levels_from_first(static_cast<std::int64_t>(state.range(0)));
  SpatialPyramidPool spp(levels);
  Tensor x(Shape{1, 256, 12, 12}, 0.5f);
  for (auto _ : state) {
    Tensor y = spp.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
// Pyramid depth is the NAS axis; cost grows with the finest level.
BENCHMARK(BM_SppForward)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_SppNetForward(benchmark::State& state) {
  Rng rng(1);
  detect::SppNet model(detect::original_sppnet(), rng);
  model.set_training(false);
  const std::int64_t size = state.range(0);
  Tensor x(Shape{1, 4, size, size}, 0.5f);
  for (auto _ : state) {
    Tensor y = model.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
// SPP accepts any input size; cost scales with area.
BENCHMARK(BM_SppNetForward)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SppNetTrainStep(benchmark::State& state) {
  Rng rng(1);
  detect::SppNet model(detect::original_sppnet(), rng);
  Tensor x(Shape{4, 4, 64, 64}, 0.5f);
  for (auto _ : state) {
    model.zero_grad();
    Tensor y = model.forward(x);
    Tensor gx = model.backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_SppNetTrainStep)->Unit(benchmark::kMillisecond);

}  // namespace
