// Ablation benches for the simulated-device design choices (DESIGN.md):
//
//  A. Stage-gap sensitivity — how much of the Table-2 speedup comes from
//     stage merging (eager per-op overhead) vs branch overlap. Sweeping
//     the inter-stage gap separates the two mechanisms.
//  B. Occupancy model — disabling the under-utilization penalty
//     (compute_efficiency sweep) shows why small-batch efficiency is poor
//     and why Figure 6 flattens where it does.
//  C. Weight-residency — charging FC weight reads per launch is what makes
//     MatMul dominate at batch 1 (Table 3); zeroing weight traffic removes
//     the effect.
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"

namespace {

using namespace dcn;

double optimized_latency(const graph::Graph& g, const simgpu::DeviceSpec& spec,
                         std::int64_t batch) {
  ios::IosOptions options;
  options.batch = batch;
  const ios::Schedule opt = ios::optimize_schedule(g, spec, options);
  simgpu::Device device(spec);
  return ios::measure_latency(g, opt, device, batch);
}

double sequential_latency(const graph::Graph& g,
                          const simgpu::DeviceSpec& spec,
                          std::int64_t batch) {
  simgpu::Device device(spec);
  return ios::measure_latency(g, ios::sequential_schedule(g), device, batch);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags("bench_ablation_costmodel",
                 "ablations of the simulated-device mechanisms");
  flags.add_int("input", 100, "input patch size");
  if (!flags.parse(argc, argv)) return 0;

  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));

  // --- A: stage-gap sweep.
  std::printf("A. IOS speedup vs eager per-operator gap (batch 1, %s)\n\n",
              model.name.c_str());
  TextTable gap_table({"Inter-stage gap (us)", "Sequential", "Optimized",
                       "Speedup"});
  for (double gap_us : {0.0, 2.0, 6.0, 12.0, 25.0, 50.0}) {
    simgpu::DeviceSpec spec = simgpu::a5500_spec();
    spec.inter_stage_gap = gap_us * 1e-6;
    const double seq = sequential_latency(g, spec, 1);
    const double opt = optimized_latency(g, spec, 1);
    gap_table.add_row({format_double(gap_us, 1), format_ms(seq * 1e3),
                       format_ms(opt * 1e3),
                       format_double(seq / opt, 2) + "x"});
  }
  std::printf("%s", gap_table.to_string().c_str());
  std::printf(
      "\nreading: with zero gap the speedup is pure branch overlap; the "
      "paper-scale speedup needs the eager frameworks' per-op gap.\n\n");

  // --- B: compute-efficiency sweep (device strength).
  std::printf("B. Batch-1 vs batch-32 efficiency across device strength\n\n");
  TextTable eff_table({"Sustained TFLOP/s", "ms/img @1", "ms/img @32",
                       "Amortization"});
  for (double eff : {0.15, 0.35, 0.55, 0.75}) {
    simgpu::DeviceSpec spec = simgpu::a5500_spec();
    spec.compute_efficiency = eff;
    const double e1 = optimized_latency(g, spec, 1);
    const double e32 = optimized_latency(g, spec, 32) / 32.0;
    eff_table.add_row({format_double(spec.sustained_flops() / 1e12, 1),
                       format_double(e1 * 1e3, 4),
                       format_double(e32 * 1e3, 4),
                       format_double(e1 / e32, 2) + "x"});
  }
  std::printf("%s", eff_table.to_string().c_str());
  std::printf(
      "\nreading: batch amortization is robust across device strength — the "
      "Figure-6 shape is not an artifact of one calibration point.\n\n");

  // --- C: weight-residency ablation via kernel-category shares.
  std::printf("C. Kernel shares at batch 1 with vs without per-launch "
              "weight reads\n\n");
  TextTable weight_table(
      {"Weight traffic", "MatMul %", "Conv %", "Pooling %"});
  for (bool charge_weights : {true, false}) {
    simgpu::DeviceSpec spec = simgpu::a5500_spec();
    ios::IosOptions options;
    const ios::Schedule opt = ios::optimize_schedule(g, spec, options);
    profiler::Recorder recorder;
    simgpu::Device device(spec, &recorder);
    // Build a kernel table with weight traffic optionally zeroed by
    // executing through a modified session: emulate by scaling the spec's
    // DRAM bandwidth to infinity for the weight path is not expressible,
    // so instead run the stages manually with adjusted descriptors.
    auto kernels = simgpu::make_kernel_table(g);
    if (!charge_weights) {
      for (auto& k : kernels) k.weight_bytes = 0.0;
    }
    device.load_library(static_cast<int>(opt.num_kernels()));
    for (const ios::Stage& stage : opt.stages) {
      std::vector<std::vector<simgpu::KernelDesc>> groups;
      for (const ios::Group& group : stage.groups) {
        std::vector<simgpu::KernelDesc> ks;
        for (graph::OpId id : group.ops) {
          ks.push_back(kernels[static_cast<std::size_t>(id)]);
        }
        groups.push_back(std::move(ks));
      }
      device.run_stage(groups, 1);
    }
    device.synchronize();
    weight_table.add_row(
        {charge_weights ? "charged per launch (ours)" : "zeroed (ablation)",
         format_percent(profiler::kernel_share(
             recorder, profiler::KernelCategory::kMatMul)),
         format_percent(profiler::kernel_share(
             recorder, profiler::KernelCategory::kConv)),
         format_percent(profiler::kernel_share(
             recorder, profiler::KernelCategory::kPooling))});
  }
  std::printf("%s", weight_table.to_string().c_str());
  std::printf(
      "\nreading: removing weight traffic erases MatMul's batch-1 dominance "
      "— the Table-3 crossover depends on FC layers being weight-read "
      "bound.\n");
  return 0;
}
