// Guard benchmark for the fault-injection hooks: a device with no fault
// plan attached must execute at (effectively) the same speed as the
// pre-fault-layer device — the check is a null-pointer test. Also measures
// the attached-but-quiet case (rules that never fire) and the full
// resilient-session wrapper, so regressions in the hot path show up here
// before they show up in campaign wall-clock.
#include <benchmark/benchmark.h>

#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"
#include "simgpu/faults.hpp"

namespace {

using namespace dcn;

simgpu::KernelDesc small_kernel() {
  simgpu::KernelDesc k;
  k.name = "k";
  k.category = profiler::KernelCategory::kConv;
  k.flops_per_sample = 1e8;
  k.activation_bytes_per_sample = 1e6;
  k.weight_bytes = 1e5;
  k.threads_per_sample = 1e4;
  return k;
}

void run_session(simgpu::Device& device, int stages) {
  device.reset_clocks();
  device.load_library(1);
  for (int i = 0; i < stages; ++i) {
    device.run_stage({{small_kernel()}}, 1);
  }
  device.synchronize();
}

// Baseline: no fault plan attached (the default for every pre-existing
// caller). The injector hook must be a branch on a null unique_ptr.
void BM_DeviceNoFaultPlan(benchmark::State& state) {
  simgpu::Device device(simgpu::a5500_spec());
  for (auto _ : state) {
    run_session(device, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(device.host_time());
  }
}
BENCHMARK(BM_DeviceNoFaultPlan)->Arg(16)->Arg(64);

// Attached plan whose rules can never fire (probability 0): pays the
// injector bookkeeping but draws no faults.
void BM_DeviceQuietFaultPlan(benchmark::State& state) {
  simgpu::Device device(simgpu::a5500_spec());
  simgpu::FaultPlan plan;
  plan.fail_with_probability(simgpu::FaultKind::kLaunchFailure, 0.0);
  device.set_fault_plan(plan);
  for (auto _ : state) {
    run_session(device, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(device.host_time());
  }
}
BENCHMARK(BM_DeviceQuietFaultPlan)->Arg(16)->Arg(64);

void BM_MeasureLatencyPlain(benchmark::State& state) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 40);
  const ios::Schedule schedule = ios::sequential_schedule(g);
  for (auto _ : state) {
    simgpu::Device device(simgpu::a5500_spec());
    benchmark::DoNotOptimize(
        ios::measure_latency(g, schedule, device, 1, 1, 3));
  }
}
BENCHMARK(BM_MeasureLatencyPlain);

// The resilient wrapper on a fault-free device: the overhead of the retry
// scaffolding itself (stats, lambdas, exception-free happy path).
void BM_MeasureLatencyResilientNoFaults(benchmark::State& state) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 40);
  const ios::Schedule schedule = ios::sequential_schedule(g);
  for (auto _ : state) {
    simgpu::Device device(simgpu::a5500_spec());
    benchmark::DoNotOptimize(ios::measure_latency_resilient(
        g, schedule, device, 1, 1, 3, ios::ResilientOptions{}));
  }
}
BENCHMARK(BM_MeasureLatencyResilientNoFaults);

}  // namespace
