// Serving benchmark: dynamic batching vs serial (batch = 1) execution at
// equal offered load.
//
// Claim under test (the Clipper/Triton argument, applied to the paper's
// drainage-crossing detector): batching inference amortizes kernel-launch
// and stage overheads, so a dynamic batcher sustains a multiple of the
// serial throughput at the same offered request stream. Both servers see
// the byte-identical trace; the serial baseline is the same server with
// max_batch = 1. Results (throughput, p50/p95/p99 latency, reject rate)
// are printed and exported to BENCH_serving.json for CI trend tracking.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "serve/server.hpp"
#include "simgpu/device.hpp"
#include "simgpu/faults.hpp"

namespace {

dcn::detect::SppNetConfig pick_model(std::int64_t candidate) {
  switch (candidate) {
    case 0:
      return dcn::detect::original_sppnet();
    case 1:
      return dcn::detect::sppnet_candidate1();
    case 2:
      return dcn::detect::sppnet_candidate2();
    case 3:
      return dcn::detect::sppnet_candidate3();
    default:
      throw dcn::ConfigError("--candidate must be 0..3, got " +
                             std::to_string(candidate));
  }
}

void json_block(std::ofstream& os, const char* name,
                const dcn::serve::ServingReport& report) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "  \"%s\": {\n"
                "    \"throughput_rps\": %.3f,\n"
                "    \"p50_ms\": %.4f,\n"
                "    \"p95_ms\": %.4f,\n"
                "    \"p99_ms\": %.4f,\n"
                "    \"reject_rate\": %.4f,\n"
                "    \"slo_attainment\": %.4f,\n"
                "    \"completed\": %lld,\n"
                "    \"mean_batch_size\": %.3f\n"
                "  }",
                name, report.throughput, report.p50 * 1e3, report.p95 * 1e3,
                report.p99 * 1e3, report.reject_rate(),
                report.slo_attainment(),
                static_cast<long long>(report.completed),
                report.mean_batch_size);
  os << buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_serving",
                 "dynamic batching vs serial serving at equal offered load");
  flags.add_int("candidate", 2, "SPP-Net variant (0=original, 1..3)");
  flags.add_int("input", 100, "input patch size");
  flags.add_double("duration", 10.0, "trace length, virtual seconds");
  flags.add_double("rate", 0.0,
                   "offered load, req/s (0 = --load x serial capacity)");
  flags.add_double("load", 3.0, "auto-rate multiple of serial capacity");
  flags.add_int("max-batch", 8, "dynamic batcher size bound");
  flags.add_double("timeout-ms", 2.0, "batching timeout, milliseconds");
  flags.add_int("queue", 64, "admission queue capacity");
  flags.add_int("replicas", 1, "model replicas");
  flags.add_double("deadline-ms", 50.0, "per-request SLO (0 disables)");
  flags.add_double("burst", 1.0, "traffic burst factor");
  flags.add_double("diurnal", 0.3, "diurnal modulation amplitude");
  flags.add_string("faults", "", "fault plan spec (empty = fault-free)");
  flags.add_int("fault-seed", 7, "fault injector seed");
  flags.add_int("seed", 1, "traffic seed");
  flags.add_bool("no-fuse", false,
                 "serve the naive graph (skip the optimizer passes)");
  flags.add_string("json", "BENCH_serving.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = pick_model(flags.get_int("candidate"));
  const graph::Graph naive =
      graph::build_inference_graph(model, flags.get_int("input"));
  // Both servers serve the optimized (fused) graph unless --no-fuse asks
  // for the A/B baseline; the batching comparison itself is orthogonal.
  const graph::Graph g =
      flags.get_bool("no-fuse") ? naive : graph::optimize_graph(naive);
  const int max_batch = static_cast<int>(flags.get_int("max-batch"));

  // Each configuration gets its best IOS schedule for its batch size, as
  // the paper re-optimizes per operating point.
  ios::IosOptions serial_options;
  serial_options.batch = 1;
  const ios::Schedule serial_schedule =
      ios::optimize_schedule(g, spec, serial_options);
  ios::IosOptions dynamic_options;
  dynamic_options.batch = max_batch;
  const ios::Schedule dynamic_schedule =
      ios::optimize_schedule(g, spec, dynamic_options);

  // Offered load, optionally anchored to the measured serial capacity so
  // "3x overload" means the same thing on every host.
  simgpu::Device probe(spec);
  const double serial_latency =
      ios::measure_latency(g, serial_schedule, probe, 1);
  double rate = flags.get_double("rate");
  if (rate <= 0.0) rate = flags.get_double("load") / serial_latency;

  serve::TrafficConfig traffic;
  traffic.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  traffic.duration = flags.get_double("duration");
  traffic.rate = rate;
  traffic.burst_factor = flags.get_double("burst");
  traffic.diurnal_amplitude = flags.get_double("diurnal");
  traffic.diurnal_period = traffic.duration;
  traffic.deadline = flags.get_double("deadline-ms") * 1e-3;
  const auto trace = serve::generate_trace(traffic);

  std::printf(
      "serving %zu requests over %.1fs (%.0f req/s offered, %s, %s)\n"
      "serial latency %.3f ms/inference -> capacity %.0f req/s\n\n",
      trace.size(), traffic.duration, rate, model.name.c_str(),
      spec.name.c_str(), serial_latency * 1e3, 1.0 / serial_latency);

  const auto run = [&](const ios::Schedule& schedule, int batch) {
    serve::ServerConfig config;
    config.batch.max_batch = batch;
    config.batch.timeout = flags.get_double("timeout-ms") * 1e-3;
    config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue"));
    config.replicas = static_cast<int>(flags.get_int("replicas"));
    config.device = spec;
    config.resilient.retry.max_attempts = 4;
    config.resilient.retry.base_backoff = 1.0e-4;
    config.resilient.retry.max_backoff = 1.0e-2;
    if (!flags.get_string("faults").empty()) {
      config.faults = simgpu::FaultPlan::parse(
          flags.get_string("faults"),
          static_cast<std::uint64_t>(flags.get_int("fault-seed")));
    }
    serve::Server server(g, schedule, config);
    return server.serve(trace);
  };

  const serve::ServingReport serial = run(serial_schedule, 1);
  const serve::ServingReport dynamic = run(dynamic_schedule, max_batch);

  TextTable table({"Config", "Throughput", "p50", "p95", "p99", "Rejected",
                   "SLO", "Mean batch"});
  const auto row = [&](const char* name,
                       const serve::ServingReport& report) {
    table.add_row({name,
                   format_double(report.throughput, 0) + " req/s",
                   format_ms(report.p50 * 1e3), format_ms(report.p95 * 1e3),
                   format_ms(report.p99 * 1e3),
                   format_percent(report.reject_rate()),
                   format_percent(report.slo_attainment()),
                   format_double(report.mean_batch_size, 2)});
  };
  row("serial (batch=1)", serial);
  row("dynamic batching", dynamic);
  std::printf("%s\n", table.to_string().c_str());

  const double speedup =
      serial.throughput > 0.0 ? dynamic.throughput / serial.throughput : 0.0;
  std::printf("dynamic batching speedup: %.2fx throughput at equal offered "
              "load (target: >= 2x)\n",
              speedup);

  std::ofstream json(flags.get_string("json"));
  json << "{\n";
  char header[256];
  std::snprintf(header, sizeof(header),
                "  \"model\": \"%s\",\n  \"offered_rate_rps\": %.1f,\n"
                "  \"duration_s\": %.1f,\n  \"max_batch\": %d,\n"
                "  \"replicas\": %d,\n",
                model.name.c_str(), rate, traffic.duration, max_batch,
                static_cast<int>(flags.get_int("replicas")));
  json << header;
  json_block(json, "serial", serial);
  json << ",\n";
  json_block(json, "dynamic", dynamic);
  char tail[64];
  std::snprintf(tail, sizeof(tail), ",\n  \"speedup\": %.3f\n}\n", speedup);
  json << tail;
  std::printf("JSON written to %s\n", flags.get_string("json").c_str());
  return 0;
}
