// Baseline comparison (§8.1 and §2.2).
//
// The paper cites a faster R-CNN reference on the same watershed reaching
// accuracy 0.882 with mean IoU 0.668, and motivates SPP-Net by the
// crop/warp compromise fixed-input CNNs must make. This bench trains three
// detectors on the same synthetic dataset and compares them:
//   - SPP-Net (the paper's approach),
//   - a fixed-input CNN with identical trunk (warp baseline),
//   - R-CNN lite: heuristic region proposals scored by the trained SPP-Net
//     (a two-stage detector in the R-CNN mold).
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/fixed_cnn.hpp"
#include "detect/imageops.hpp"
#include "detect/rcnn_lite.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_baseline_rcnn", "SPP-Net vs baselines (§8.1)");
  flags.add_int("seed", 2022, "seed");
  flags.add_int("patch", 56, "patch size");
  flags.add_int("worlds", 2, "synthetic watersheds");
  flags.add_int("epochs", 24, "training epochs");
  flags.add_string("csv", "baselines.csv", "CSV export path");
  if (!flags.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  geo::DatasetConfig data_config;
  data_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  data_config.num_worlds = static_cast<int>(flags.get_int("worlds"));
  data_config.patch_size = flags.get_int("patch");
  data_config.terrain.rows = data_config.terrain.cols = 512;
  data_config.render.culvert_contrast = 0.55;  // match bench_table1 difficulty
  data_config.render.sensor_noise = 0.04;
  data_config.render.canopy_occlusion = 0.5;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);
  std::printf(
      "Baseline comparison on %zu synthetic patches (%zu positive)\n"
      "paper reference: faster R-CNN accuracy 0.882, IoU 0.668 (§8.1)\n\n",
      dataset.size(), dataset.num_positives());

  detect::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.get_int("epochs"));
  train_config.verbose = false;

  TextTable table({"Detector", "AP", "Accuracy", "Mean IoU"});
  CsvWriter csv({"detector", "ap", "accuracy", "mean_iou"});

  // --- SPP-Net (trained once, reused by R-CNN lite as the scorer).
  Rng rng_spp(7);
  detect::SppNet sppnet(detect::original_sppnet(), rng_spp);
  const auto spp_history =
      detect::train_detector(sppnet, dataset, split, train_config);
  table.add_row({"SPP-Net (ours)",
                 format_percent(spp_history.final_eval.average_precision),
                 format_percent(spp_history.final_eval.accuracy),
                 format_double(spp_history.final_eval.mean_iou, 3)});
  csv.add_row({"sppnet",
               format_double(spp_history.final_eval.average_precision, 4),
               format_double(spp_history.final_eval.accuracy, 4),
               format_double(spp_history.final_eval.mean_iou, 4)});
  std::printf("[1/3] SPP-Net trained\n");

  // --- Fixed-input CNN (same trunk, Flatten instead of SPP).
  Rng rng_fixed(7);
  detect::FixedInputCnn fixed(detect::original_sppnet(),
                              data_config.patch_size, rng_fixed);
  const auto fixed_history =
      detect::train_detector(fixed, dataset, split, train_config);
  table.add_row({"Fixed-input CNN (crop/warp)",
                 format_percent(fixed_history.final_eval.average_precision),
                 format_percent(fixed_history.final_eval.accuracy),
                 format_double(fixed_history.final_eval.mean_iou, 3)});
  csv.add_row({"fixed_cnn",
               format_double(fixed_history.final_eval.average_precision, 4),
               format_double(fixed_history.final_eval.accuracy, 4),
               format_double(fixed_history.final_eval.mean_iou, 4)});
  std::printf("[2/3] fixed-input CNN trained\n");

  // --- R-CNN lite: proposals + the trained SPP-Net as crop scorer.
  detect::RcnnLiteDetector rcnn(sppnet, detect::ProposalConfig{});
  std::vector<detect::ScoredDetection> detections;
  for (std::size_t idx : split.test) {
    const auto& sample = dataset.sample(idx);
    const detect::Prediction pred = rcnn.detect(sample.image);
    detect::ScoredDetection det;
    det.confidence = pred.confidence;
    det.has_object = sample.label > 0.0f;
    det.iou = det.has_object ? detect::box_iou(pred.box, sample.box) : 0.0f;
    detections.push_back(det);
  }
  const double rcnn_ap = detect::average_precision(detections);
  const double rcnn_acc = detect::accuracy_at_threshold(detections, 0.25f);
  const double rcnn_iou = detect::mean_iou_of_detections(detections, 0.25f);
  table.add_row({"R-CNN lite (proposals + SPP scorer)",
                 format_percent(rcnn_ap), format_percent(rcnn_acc),
                 format_double(rcnn_iou, 3)});
  csv.add_row({"rcnn_lite", format_double(rcnn_ap, 4),
               format_double(rcnn_acc, 4), format_double(rcnn_iou, 4)});
  table.add_row({"faster R-CNN (paper reference)", "-", "88.2%", "0.668"});
  csv.add_row({"faster_rcnn_paper_ref", "", "0.882", "0.668"});
  std::printf("[3/3] R-CNN lite evaluated\n\n");

  std::printf("%s", table.to_string().c_str());

  // --- Multi-scale robustness (the §2.2 motivation for SPP): evaluate
  // both trained detectors on rescaled test patches. SPP-Net consumes each
  // scale natively; the fixed-input CNN must warp back to its training
  // resolution. Normalized boxes are scale-invariant, so AP is comparable.
  std::printf("\nMulti-scale evaluation (AP at rescaled test inputs):\n\n");
  TextTable scale_table({"Input scale", "SPP-Net AP", "Fixed-input CNN AP"});
  double spp_off_scale = 0.0;
  double fixed_off_scale = 0.0;
  double spp_native = 0.0;
  double fixed_native = 0.0;
  for (double scale : {0.75, 1.0, 1.25}) {
    const auto scaled_size = static_cast<std::int64_t>(
        static_cast<double>(data_config.patch_size) * scale);
    auto eval_at_scale = [&](Module& detector) {
      std::vector<detect::ScoredDetection> dets;
      for (std::size_t idx : split.test) {
        const auto& s = dataset.sample(idx);
        const Tensor resized =
            detect::bilinear_resize(s.image, scaled_size, scaled_size);
        Tensor batch(Shape{1, resized.dim(0), scaled_size, scaled_size});
        std::copy(resized.data(), resized.data() + resized.numel(),
                  batch.data());
        const bool was_training = detector.is_training();
        detector.set_training(false);
        const auto preds = detect::SppNet::decode(detector.forward(batch));
        detector.set_training(was_training);
        detect::ScoredDetection det;
        det.confidence = preds[0].confidence;
        det.has_object = s.label > 0.0f;
        det.iou = det.has_object ? detect::box_iou(preds[0].box, s.box)
                                 : 0.0f;
        dets.push_back(det);
      }
      return detect::average_precision(dets);
    };
    const double spp_ap = eval_at_scale(sppnet);
    const double fixed_ap = eval_at_scale(fixed);
    if (scale == 1.0) {
      spp_native = spp_ap;
      fixed_native = fixed_ap;
    } else {
      spp_off_scale += spp_ap / 2.0;
      fixed_off_scale += fixed_ap / 2.0;
    }
    scale_table.add_row({format_double(scale, 2), format_percent(spp_ap),
                         format_percent(fixed_ap)});
  }
  std::printf("%s", scale_table.to_string().c_str());
  if (spp_native - spp_off_scale < fixed_native - fixed_off_scale) {
    std::printf(
        "\nreading: SPP-Net loses less AP off its training scale than the "
        "warp baseline — §2.2's argument for spatial pyramid pooling.\n");
  } else {
    std::printf(
        "\nreading: at this single-scale training budget the warp baseline "
        "is the more scale-robust detector — warping re-normalizes object "
        "scale back to the training distribution, while max-pooled SPP "
        "features shift with scale. He et al. realize SPP's multi-scale "
        "advantage by training at multiple input sizes, which this "
        "reduced-budget bench does not do (see --epochs/--worlds).\n");
  }

  csv.write(flags.get_string("csv"));
  std::printf("\nCSV written to %s\n", flags.get_string("csv").c_str());
  return 0;
}
