// Microkernel acceptance benchmark: dispatched + autotuned SIMD kernels vs
// the frozen pre-vectorization scalar engine, over the five GEMM shapes the
// SPP-Net workload hits (conv1/conv3 im2col lowerings, the FC layer, and
// two square acceptance shapes).
//
// Claims under test (the tentpole of the microkernel-registry PR):
//   1. the best dispatched variant beats sgemm_blocked_scalar by >= 1.3x
//      geomean across the shape set, and
//   2. per shape, the autotuned tile is never slower than the fixed 4x32
//      default tile beyond a 5% noise allowance — the tuner must pay for
//      itself (its candidate #0 *is* the default, so this is a check that
//      caching/replay does not corrupt the decision).
//
// Bit-identity of every variant and tile against the generic registrant is
// pinned by test_kernels/test_gemm; this bench measures only the speed side
// and exports BENCH_microkernels.json for the CI regression gate
// (tools/bench_compare.py). Exits non-zero when either floor is missed.
//
// JSON key discipline: only machine-stable values carry gate-classified
// names (*_speedup_met); raw wall-clock numbers live under *_info leaves so
// bench_compare treats them as informational — unlike the simulated-device
// benches, these timings are host-dependent.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/registry.hpp"
#include "tensor/kernels/tuner.hpp"

namespace {

using namespace dcn;

struct Shape {
  std::int64_t m, n, k;
  const char* label;
};

constexpr Shape kShapes[] = {
    {64, 10000, 36, "conv1 im2col 100x100"},
    {256, 625, 1152, "conv3 im2col 25x25"},
    {4096, 1, 7680, "FC 7680->4096"},
    {256, 256, 256, "square 256"},
    {512, 512, 512, "square 512"},
};

std::vector<float> random_matrix(std::int64_t n, Rng& rng) {
  std::vector<float> m(static_cast<std::size_t>(n));
  for (auto& v : m) v = static_cast<float>(rng.normal());
  return m;
}

/// One timed sample: `iters` back-to-back runs, per-run milliseconds.
/// Small shapes run sub-millisecond, where a single-run sample is mostly
/// timer/scheduling jitter — the caller picks `iters` so every sample
/// covers a few milliseconds of work.
template <typename Fn>
double time_sample_ms(int iters, const Fn& fn) {
  WallTimer timer;
  for (int i = 0; i < iters; ++i) fn();
  return timer.milliseconds() / iters;
}

constexpr double kMinSampleMs = 4.0;

std::string shape_key(const Shape& s) {
  return std::to_string(s.m) + "x" + std::to_string(s.n) + "x" +
         std::to_string(s.k);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_microkernels",
                 "dispatched+tuned SIMD kernels vs the frozen scalar engine");
  flags.add_int("reps", 5, "timed repetitions per kernel (min is reported)");
  flags.add_double("geomean-floor", 1.3,
                   "required geomean speedup over the scalar baseline");
  flags.add_double("tile-slack", 1.05,
                   "allowed tuned/default-tile time ratio per shape");
  flags.add_string("json", "BENCH_microkernels.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  const int reps = static_cast<int>(flags.get_int("reps"));
  const double floor = flags.get_double("geomean-floor");
  const double slack = flags.get_double("tile-slack");

  // One engine thread: this bench compares microkernel quality, not the
  // thread scaling already covered by bench_micro_gemm/BM_GemmThreads, and
  // the scalar baseline is single-threaded by construction.
  set_num_threads(1);

  auto& registry = kernels::KernelRegistry::global();
  auto& tuner = kernels::TileTuner::global();
  const auto& active = registry.active();

  // The fixed reference tile the tuner has to beat (or match): 4x32 where
  // the active variant registers it, otherwise the variant's own default.
  std::int64_t def_mr = active.default_sgemm().mr;
  std::int64_t def_nr = active.default_sgemm().nr;
  if (active.find_sgemm(4, 32) != nullptr) {
    def_mr = 4;
    def_nr = 32;
  }

  std::printf("dispatched variant: %s (of:", active.name.c_str());
  for (const auto& name : registry.variant_names()) {
    std::printf(" %s%s", name.c_str(),
                registry.variant_supported(name) ? "" : "[unsupported]");
  }
  std::printf(")  threads=1  reps=%d\n", reps);
  std::printf("default tile %lldx%lld, tuner %s\n\n",
              static_cast<long long>(def_mr), static_cast<long long>(def_nr),
              tuner.enabled() ? "on" : "off");
  std::printf("%-22s %12s %12s %12s %9s %6s\n", "shape", "scalar ms",
              "tuned ms", "def-tile ms", "speedup", "tile");

  double log_sum = 0.0;
  int tile_ok = 0;
  std::string per_shape_json;
  for (const auto& shape : kShapes) {
    Rng rng(1);
    const auto a = random_matrix(shape.m * shape.k, rng);
    const auto b = random_matrix(shape.k * shape.n, rng);
    std::vector<float> c(static_cast<std::size_t>(shape.m * shape.n));

    const auto run_scalar = [&] {
      sgemm_blocked_scalar(false, false, shape.m, shape.n, shape.k, 1.0f,
                           a.data(), shape.k, b.data(), shape.n, 0.0f,
                           c.data(), shape.n);
    };
    const auto run_tuned = [&] {
      matmul(false, false, shape.m, shape.n, shape.k, a.data(), b.data(),
             c.data());
    };
    const auto run_default = [&] {
      kernels::TileTuner::ScopedForcedTile force(def_mr, def_nr);
      matmul(false, false, shape.m, shape.n, shape.k, a.data(), b.data(),
             c.data());
    };

    // Warmups (the tuned one also absorbs any cold autotuning); the tuned
    // warmup is timed to size the per-sample iteration count. Then the
    // three kernels are sampled interleaved per round so slow clock/thermal
    // drift hits them equally; min over rounds filters additive noise.
    run_scalar();
    WallTimer warm_timer;
    run_tuned();
    const double warm_ms = std::max(0.01, warm_timer.milliseconds());
    run_default();
    const int iters =
        static_cast<int>(std::max(1.0, std::min(64.0, kMinSampleMs / warm_ms)));
    double scalar_ms = 0.0, tuned_ms = 0.0, default_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double s = time_sample_ms(iters, run_scalar);
      const double t = time_sample_ms(iters, run_tuned);
      const double d = time_sample_ms(iters, run_default);
      if (r == 0 || s < scalar_ms) scalar_ms = s;
      if (r == 0 || t < tuned_ms) tuned_ms = t;
      if (r == 0 || d < default_ms) default_ms = d;
    }

    const kernels::TileConfig chosen = tuner.choose(
        active, 'f', shape.m, shape.n, shape.k,
        [](const kernels::TileConfig&) { return 0.0; });  // memoized by now

    // When the tuner's winner IS the forced default configuration, both
    // timed paths ran identical code — any gap is pure noise, so tie them.
    if (chosen.mr == def_mr && chosen.nr == def_nr &&
        chosen.mc == std::max<std::int64_t>(128, def_mr) &&
        chosen.nc == std::max<std::int64_t>(256, def_nr)) {
      tuned_ms = default_ms = std::min(tuned_ms, default_ms);
    }

    const double speedup = scalar_ms / tuned_ms;
    const bool shape_tile_ok = tuned_ms <= slack * default_ms;
    if (shape_tile_ok) ++tile_ok;
    log_sum += std::log(speedup);

    std::printf("%-22s %12.3f %12.3f %12.3f %8.2fx %lldx%lld%s\n",
                shape.label, scalar_ms, tuned_ms, default_ms, speedup,
                static_cast<long long>(chosen.mr),
                static_cast<long long>(chosen.nr),
                shape_tile_ok ? "" : "  TILE-REGRESSION");

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\n"
                  "      \"scalar_info\": %.4f,\n"
                  "      \"tuned_info\": %.4f,\n"
                  "      \"default_tile_info\": %.4f,\n"
                  "      \"ratio_info\": %.4f,\n"
                  "      \"tile\": \"%lldx%lld mc=%lld nc=%lld\"\n"
                  "    }",
                  shape_key(shape).c_str(), scalar_ms, tuned_ms, default_ms,
                  speedup, static_cast<long long>(chosen.mr),
                  static_cast<long long>(chosen.nr),
                  static_cast<long long>(chosen.mc),
                  static_cast<long long>(chosen.nc));
    if (!per_shape_json.empty()) per_shape_json += ",\n";
    per_shape_json += buf;
  }

  const int shape_count = static_cast<int>(std::size(kShapes));
  const double geomean = std::exp(log_sum / shape_count);
  const bool geomean_met = geomean >= floor;
  const bool tiles_met = tile_ok == shape_count;
  const auto tuner_stats = tuner.stats();

  std::printf("\ngeomean speedup %.3fx (floor %.2fx) — %s\n", geomean, floor,
              geomean_met ? "PASS" : "FAIL");
  std::printf("tuned tile within %.0f%% of %lldx%lld default on %d/%d shapes"
              " — %s\n",
              (slack - 1.0) * 100.0, static_cast<long long>(def_mr),
              static_cast<long long>(def_nr), tile_ok, shape_count,
              tiles_met ? "PASS" : "FAIL");

  const std::string& json_path = flags.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char head[1024];
    std::snprintf(head, sizeof(head),
                  "{\n"
                  "  \"active_variant\": \"%s\",\n"
                  "  \"threads\": 1,\n"
                  "  \"shapes\": %d,\n"
                  "  \"geomean_floor\": %.2f,\n"
                  "  \"geomean_speedup_met\": %d,\n"
                  "  \"tuned_tile_speedup_met\": %d,\n"
                  "  \"geomean_ratio_info\": %.4f,\n"
                  "  \"tuner_tuned_info\": %lld,\n"
                  "  \"tuner_disk_hits_info\": %lld,\n"
                  "  \"per_shape\": {\n",
                  active.name.c_str(), shape_count, floor, geomean_met ? 1 : 0,
                  tiles_met ? 1 : 0, geomean,
                  static_cast<long long>(tuner_stats.tuned),
                  static_cast<long long>(tuner_stats.disk_hits));
    out << head << per_shape_json << "\n  }\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  return (geomean_met && tiles_met) ? 0 : 1;
}
