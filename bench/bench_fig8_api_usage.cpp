// Reproduces Figure 8: CUDA API time shares vs batch size.
//
// Paper claim: profiling whole inference runs with nsys, cuLibraryLoadData
// dominates at batch 1 (~80% of API time, 0.4% for cudaDeviceSynchronize),
// while at batch 64 synchronization overtakes it (45.4%) because the host
// spends its time blocked on the much larger device workload. The
// simulated session reproduces this: module loading is a large fixed cost,
// and the final synchronize absorbs the batch-scaled kernel time across
// the profiled measurement loop.
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_fig8_api_usage",
                 "reproduce Figure 8 (CUDA API shares vs batch size)");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("iterations", 10, "inference iterations per profiled run");
  flags.add_string("csv", "fig8.csv", "CSV export path");
  flags.add_bool("full_report", false, "print the whole nsys-style report");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  std::printf(
      "Figure 8 — CUDA API time share vs batch size (%s, %d-iteration "
      "profiled runs)\npaper reference: batch 1 -> cuLibraryLoadData ~80%%, "
      "cudaDeviceSynchronize 0.4%%; batch 64 -> sync 45.4%%\n\n",
      model.name.c_str(), static_cast<int>(flags.get_int("iterations")));

  TextTable table({"Batch", "cuLibraryLoadData %", "cudaDeviceSynchronize %",
                   "Memcpy %", "Launch %"});
  CsvWriter csv({"batch", "library_load_pct", "sync_pct", "memcpy_pct",
                 "launch_pct", "malloc_pct", "stream_pct"});

  for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);
    profiler::Recorder recorder;
    simgpu::Device device(spec, &recorder);
    ios::InferenceSession session(g, schedule, device);
    session.initialize();
    for (int i = 0; i < flags.get_int("iterations"); ++i) {
      (void)session.run(batch);
    }

    const double lib =
        profiler::api_share(recorder, profiler::ApiKind::kLibraryLoadData);
    const double sync = profiler::api_share(
        recorder, profiler::ApiKind::kDeviceSynchronize);
    const double memcpy_share =
        profiler::api_share(recorder, profiler::ApiKind::kMemcpyH2D) +
        profiler::api_share(recorder, profiler::ApiKind::kMemcpyD2H);
    const double launch =
        profiler::api_share(recorder, profiler::ApiKind::kLaunchKernel);
    table.add_row({std::to_string(batch), format_percent(lib),
                   format_percent(sync), format_percent(memcpy_share),
                   format_percent(launch)});
    csv.add_row(
        {std::to_string(batch), format_double(lib * 100, 2),
         format_double(sync * 100, 2), format_double(memcpy_share * 100, 2),
         format_double(launch * 100, 2),
         format_double(
             profiler::api_share(recorder, profiler::ApiKind::kMemAlloc) *
                 100,
             2),
         format_double(profiler::api_share(
                           recorder, profiler::ApiKind::kStreamCreate) *
                           100,
                       2)});
    if (flags.get_bool("full_report") && (batch == 1 || batch == 64)) {
      std::printf("--- full report, batch %lld ---\n%s\n",
                  static_cast<long long>(batch),
                  profiler::render_report(recorder).c_str());
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nshape check: the library-load share falls monotonically with batch "
      "while the synchronize share rises and becomes first-order at 64.\n");
  csv.write(flags.get_string("csv"));
  std::printf("CSV written to %s\n", flags.get_string("csv").c_str());
  return 0;
}
