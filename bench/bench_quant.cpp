// Quantization benchmark: INT8 vs FP32 deployment of the selected SPP-Net.
//
// Claim under test (the paper's efficiency argument, extended to
// post-training quantization): INT8 inference of the accuracy-selected
// SPP-Net is at least 1.5x faster than FP32 on the simulated A5500 while
// the quantized detector gives up at most 1.0 AP point. Latency comes from
// the virtual-clock cost model (machine-independent); accuracy comes from
// really training the float model on the synthetic drainage dataset,
// quantizing it on a seeded calibration split, and re-scoring AP — so the
// JSON is byte-stable across hosts and usable as a CI regression baseline.
// Exits non-zero when either acceptance target is missed.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/calibration.hpp"
#include "detect/quantized_sppnet.hpp"
#include "detect/sppnet_config.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"
#include "simgpu/spec.hpp"

namespace {

dcn::detect::SppNetConfig pick_model(std::int64_t candidate) {
  switch (candidate) {
    case 0:
      return dcn::detect::original_sppnet();
    case 1:
      return dcn::detect::sppnet_candidate1();
    case 2:
      return dcn::detect::sppnet_candidate2();
    case 3:
      return dcn::detect::sppnet_candidate3();
    default:
      throw dcn::ConfigError("--candidate must be 0..3, got " +
                             std::to_string(candidate));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_quant",
                 "INT8 vs FP32 latency and accuracy of the selected SPP-Net");
  flags.add_int("candidate", 2, "SPP-Net variant (0=original, 1..3)");
  flags.add_int("input", 100, "inference patch size for latency timing");
  flags.add_int("batch", 1, "latency batch size");
  flags.add_int("patch", 40, "training patch size for the accuracy check");
  flags.add_int("terrain", 384, "synthetic world edge length");
  flags.add_int("epochs", 12, "float-model training epochs");
  flags.add_int("calibration", 8, "calibration images");
  flags.add_int("seed", 2023, "data + weight seed");
  flags.add_double("speedup-floor", 1.5, "required int8 latency speedup");
  flags.add_double("ap-budget", 1.0, "allowed AP drop, points");
  flags.add_string("json", "BENCH_quant.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::kWarn);
  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model_config =
      pick_model(flags.get_int("candidate"));
  const std::int64_t batch = flags.get_int("batch");

  // --- Latency: same IOS-optimized schedule, fp32 vs int8 kernels ----------
  const graph::Graph g =
      graph::build_inference_graph(model_config, flags.get_int("input"));
  ios::IosOptions options;
  options.batch = batch;
  const ios::Schedule fp32_schedule = ios::optimize_schedule(g, spec, options);
  ios::IosOptions int8_options = options;
  int8_options.precision = simgpu::Precision::kInt8;
  const ios::Schedule int8_schedule =
      ios::optimize_schedule(g, spec, int8_options);

  simgpu::Device fp32_device(spec);
  simgpu::Device int8_device(spec);
  const double fp32_latency =
      ios::measure_latency(g, fp32_schedule, fp32_device, batch);
  const double int8_latency =
      ios::measure_latency(g, int8_schedule, int8_device, batch, 1, 3,
                           simgpu::Precision::kInt8);
  const double speedup =
      int8_latency > 0.0 ? fp32_latency / int8_latency : 0.0;

  // --- Accuracy: train float, quantize post-training, re-score AP ----------
  geo::DatasetConfig data_config;
  data_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  data_config.patch_size = flags.get_int("patch");
  data_config.terrain.rows = data_config.terrain.cols =
      static_cast<int>(flags.get_int("terrain"));
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")) + 7);
  detect::SppNet model(model_config, rng);
  detect::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.get_int("epochs"));
  train_config.verbose = false;
  (void)detect::train_detector(model, dataset, split, train_config);
  const double fp32_ap =
      detect::evaluate_detector(model, dataset, split.test)
          .average_precision;

  std::vector<std::size_t> picks;
  for (const std::int64_t i : detect::calibration_split(
           static_cast<std::int64_t>(split.train.size()),
           flags.get_int("calibration"),
           static_cast<std::uint64_t>(flags.get_int("seed")))) {
    picks.push_back(split.train[static_cast<std::size_t>(i)]);
  }
  detect::QuantizedSppNet quantized(model, dataset.make_batch(picks).images);
  const double int8_ap =
      detect::evaluate_detector(quantized, dataset, split.test)
          .average_precision;
  const double ap_drop_points = (fp32_ap - int8_ap) * 100.0;

  // --- Report ---------------------------------------------------------------
  TextTable table({"Precision", "Latency", "Throughput", "AP"});
  table.add_row({"fp32", format_ms(fp32_latency * 1e3),
                 format_double(static_cast<double>(batch) / fp32_latency, 0) +
                     " img/s",
                 format_percent(fp32_ap)});
  table.add_row({"int8", format_ms(int8_latency * 1e3),
                 format_double(static_cast<double>(batch) / int8_latency, 0) +
                     " img/s",
                 format_percent(int8_ap)});
  std::printf("%s (%s, input %lld, batch %lld)\n\n%s\n",
              model_config.name.c_str(), spec.name.c_str(),
              static_cast<long long>(flags.get_int("input")),
              static_cast<long long>(batch), table.to_string().c_str());

  const double speedup_floor = flags.get_double("speedup-floor");
  const double ap_budget = flags.get_double("ap-budget");
  const bool speedup_ok = speedup >= speedup_floor;
  const bool accuracy_ok = ap_drop_points <= ap_budget;
  std::printf("int8 speedup: %.2fx (target >= %.2fx) %s\n", speedup,
              speedup_floor, speedup_ok ? "OK" : "FAIL");
  std::printf("AP drop: %.2f points (budget %.2f) %s\n", ap_drop_points,
              ap_budget, accuracy_ok ? "OK" : "FAIL");

  std::ofstream json(flags.get_string("json"));
  char buffer[768];
  std::snprintf(buffer, sizeof(buffer),
                "{\n"
                "  \"model\": \"%s\",\n"
                "  \"input\": %lld,\n"
                "  \"batch\": %lld,\n"
                "  \"fp32_latency_ms\": %.6f,\n"
                "  \"int8_latency_ms\": %.6f,\n"
                "  \"speedup\": %.4f,\n"
                "  \"fp32_ap\": %.4f,\n"
                "  \"int8_ap\": %.4f,\n"
                "  \"ap_drop_points\": %.4f\n"
                "}\n",
                model_config.name.c_str(),
                static_cast<long long>(flags.get_int("input")),
                static_cast<long long>(batch), fp32_latency * 1e3,
                int8_latency * 1e3, speedup, fp32_ap, int8_ap,
                ap_drop_points);
  json << buffer;
  std::printf("JSON written to %s\n", flags.get_string("json").c_str());
  return speedup_ok && accuracy_ok ? 0 : 1;
}
