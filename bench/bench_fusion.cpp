// Fusion benchmark: graph-optimizer passes vs the naive graph.
//
// Claim under test (the tentpole of the optimizer-pass PR): running the
// pattern registry — conv+ReLU / linear+ReLU fusion, constant folding,
// flatten canonicalization, dead-op elimination — over the SPP-Net
// inference graph removes at least 25% of the scheduled kernel launches
// and strictly lowers end-to-end latency at fp32 and int8, while the IOS
// scheduler consumes the fused graph directly. Numerical equivalence
// (bit-identical fused vs unfused outputs) is pinned by
// test_graph_passes; this bench measures the efficiency side and exports
// BENCH_fusion.json for the CI regression gate. Exits non-zero when the
// launch-reduction floor is missed.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"
#include "simgpu/spec.hpp"

namespace {

dcn::detect::SppNetConfig pick_model(std::int64_t candidate) {
  switch (candidate) {
    case 0:
      return dcn::detect::original_sppnet();
    case 1:
      return dcn::detect::sppnet_candidate1();
    case 2:
      return dcn::detect::sppnet_candidate2();
    case 3:
      return dcn::detect::sppnet_candidate3();
    default:
      throw dcn::ConfigError("--candidate must be 0..3, got " +
                             std::to_string(candidate));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_fusion",
                 "kernel launches and latency, fused vs naive graph");
  flags.add_int("candidate", 2, "SPP-Net variant (0=original, 1..3)");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("batch", 1, "latency batch size");
  flags.add_double("reduction-floor", 0.25,
                   "required fraction of kernel launches eliminated");
  flags.add_string("json", "BENCH_fusion.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = pick_model(flags.get_int("candidate"));
  const std::int64_t batch = flags.get_int("batch");

  const graph::Graph naive =
      graph::build_inference_graph(model, flags.get_int("input"));
  graph::PassStats stats;
  const graph::Graph fused = graph::optimize_graph(naive, {}, &stats);

  const auto naive_launches = graph::device_op_count(naive);
  const auto fused_launches = graph::device_op_count(fused);
  const double reduction =
      1.0 - static_cast<double>(fused_launches) /
                static_cast<double>(naive_launches);

  std::printf("%s, input %lld, batch %lld (%s)\n", model.name.c_str(),
              static_cast<long long>(flags.get_int("input")),
              static_cast<long long>(batch), spec.name.c_str());
  std::printf("optimizer: %d fixpoint iteration(s), %zu -> %zu ops\n",
              stats.iterations, stats.ops_before, stats.ops_after);
  for (const auto& [pass, rewrites] : stats.rewrites) {
    if (rewrites > 0) std::printf("  %-20s %d rewrite(s)\n", pass.c_str(),
                                  rewrites);
  }

  // End-to-end latency: each graph gets its own best IOS schedule at each
  // precision, exactly how the runner deploys them.
  const auto time_graph = [&](const graph::Graph& g,
                              simgpu::Precision precision) {
    ios::IosOptions options;
    options.batch = batch;
    options.precision = precision;
    const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);
    simgpu::Device device(spec);
    return ios::measure_latency(g, schedule, device, batch, /*warmup=*/1,
                                /*repeats=*/3, precision);
  };
  const double naive_fp32 = time_graph(naive, simgpu::Precision::kFp32);
  const double fused_fp32 = time_graph(fused, simgpu::Precision::kFp32);
  const double naive_int8 = time_graph(naive, simgpu::Precision::kInt8);
  const double fused_int8 = time_graph(fused, simgpu::Precision::kInt8);

  TextTable table({"Graph", "Launches", "fp32 latency", "int8 latency"});
  table.add_row({"naive", std::to_string(naive_launches),
                 format_ms(naive_fp32 * 1e3), format_ms(naive_int8 * 1e3)});
  table.add_row({"fused", std::to_string(fused_launches),
                 format_ms(fused_fp32 * 1e3), format_ms(fused_int8 * 1e3)});
  std::printf("\n%s\n", table.to_string().c_str());

  const double floor = flags.get_double("reduction-floor");
  const bool reduction_ok = reduction >= floor;
  const double fp32_speedup = naive_fp32 / fused_fp32;
  const double int8_speedup = naive_int8 / fused_int8;
  std::printf("launch reduction: %.1f%% (target >= %.0f%%) %s\n",
              reduction * 100.0, floor * 100.0,
              reduction_ok ? "OK" : "FAIL");
  std::printf("latency speedup: %.3fx fp32, %.3fx int8\n", fp32_speedup,
              int8_speedup);

  std::ofstream json(flags.get_string("json"));
  char buffer[768];
  std::snprintf(buffer, sizeof(buffer),
                "{\n"
                "  \"model\": \"%s\",\n"
                "  \"input\": %lld,\n"
                "  \"batch\": %lld,\n"
                "  \"naive_launches\": %zu,\n"
                "  \"fused_launches\": %zu,\n"
                "  \"launch_reduction\": %.4f,\n"
                "  \"naive_fp32_latency_ms\": %.6f,\n"
                "  \"fused_fp32_latency_ms\": %.6f,\n"
                "  \"naive_int8_latency_ms\": %.6f,\n"
                "  \"fused_int8_latency_ms\": %.6f,\n"
                "  \"fp32_speedup\": %.4f,\n"
                "  \"int8_speedup\": %.4f\n"
                "}\n",
                model.name.c_str(),
                static_cast<long long>(flags.get_int("input")),
                static_cast<long long>(batch), naive_launches, fused_launches,
                reduction, naive_fp32 * 1e3, fused_fp32 * 1e3,
                naive_int8 * 1e3, fused_int8 * 1e3, fp32_speedup,
                int8_speedup);
  json << buffer;
  std::printf("JSON written to %s\n", flags.get_string("json").c_str());
  return reduction_ok ? 0 : 1;
}
