// Micro benchmarks for the scheduling stack: graph construction, block
// extraction, the IOS dynamic program (vs pyramid depth, the block-size
// driver), and the simulated executor.
#include <benchmark/benchmark.h>

#include "detect/sppnet_config.hpp"
#include "graph/blocks.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "nn/spp.hpp"
#include "simgpu/device.hpp"

namespace {

using namespace dcn;

detect::SppNetConfig config_with_levels(std::int64_t first_level) {
  detect::SppNetConfig config = detect::original_sppnet();
  config.spp_levels = spp_levels_from_first(first_level);
  return config;
}

void BM_BuildGraph(benchmark::State& state) {
  const auto config = detect::sppnet_candidate2();
  for (auto _ : state) {
    graph::Graph g = graph::build_inference_graph(config, 100);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_BuildGraph);

void BM_ExtractBlocks(benchmark::State& state) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  for (auto _ : state) {
    auto blocks = graph::extract_blocks(g);
    benchmark::DoNotOptimize(blocks.size());
  }
}
BENCHMARK(BM_ExtractBlocks);

void BM_IosDp(benchmark::State& state) {
  // DP cost grows with the branched block (2 ops per pyramid level).
  const graph::Graph g = graph::build_inference_graph(
      config_with_levels(state.range(0)), 100);
  const auto spec = simgpu::a5500_spec();
  for (auto _ : state) {
    ios::Schedule schedule = ios::optimize_schedule(g, spec);
    benchmark::DoNotOptimize(schedule.num_stages());
  }
}
BENCHMARK(BM_IosDp)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMicrosecond);

void BM_BruteForceDp(benchmark::State& state) {
  // Whole-graph DP over every device op — the exponential oracle, for
  // contrast with the block-decomposed path above.
  detect::SppNetConfig config = detect::parse_notation(
      "C_{16,3,1}-P_{2,2}-SPP_{3,2,1}-F_{64}", 4);
  const graph::Graph g = graph::build_inference_graph(config, 32);
  const auto spec = simgpu::a5500_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ios::brute_force_best_cost(g, spec, 1));
  }
}
BENCHMARK(BM_BruteForceDp)->Unit(benchmark::kMillisecond);

void BM_SimulatedInference(benchmark::State& state) {
  // Host-side cost of simulating one inference (virtual time is free; this
  // measures the simulator's own overhead).
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  simgpu::Device device(spec);
  ios::InferenceSession session(g, schedule, device);
  session.initialize();
  const std::int64_t batch = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(batch).latency_seconds);
  }
}
BENCHMARK(BM_SimulatedInference)->Arg(1)->Arg(64);

void BM_ScheduleCostEvaluation(benchmark::State& state) {
  const graph::Graph g =
      graph::build_inference_graph(detect::sppnet_candidate2(), 100);
  const auto spec = simgpu::a5500_spec();
  const ios::Schedule schedule = ios::optimize_schedule(g, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ios::schedule_cost(g, spec, schedule, 1));
  }
}
BENCHMARK(BM_ScheduleCostEvaluation);

}  // namespace
