// Cascade scanning benchmark: early-exit cascade vs full-model-only scan
// of a synthetic watershed.
//
// Claim under test (the scan subsystem's reason to exist): on watershed
// imagery that is overwhelmingly negative (>= 95% of tiles contain no
// crossing), screening every tile with the NAS-selected int8 screener and
// sending only survivors to the full SPP-Net sustains at least 3x the
// tiles/sec of scanning with the full model alone, while the cascade's AP
// over the same tiles stays within 1.0 point of the full model's. The
// stage-1 threshold is not hand-picked: it is calibrated on a held-out
// validation watershed (cheapest operating point within the AP budget)
// and applied unchanged to the benchmark watershed.
//
// Throughput comes from the virtual-clock serving simulation (both stages
// as serve::Server pools, offline drain regime); accuracy comes from real
// tensor-engine inference of the trained models — so the JSON is
// byte-stable across hosts and committed as a CI regression baseline.
// Exits non-zero when any floor is missed.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "detect/sppnet.hpp"
#include "detect/sppnet_config.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "scan/calibrate.hpp"
#include "scan/cascade.hpp"
#include "scan/pipeline.hpp"
#include "scan/screener.hpp"
#include "simgpu/device.hpp"
#include "simgpu/spec.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_cascade",
                 "early-exit cascade vs full-model-only watershed scanning");
  flags.add_int("tile", 48, "scan tile size (pixels)");
  flags.add_double("overlap", 0.25, "tile overlap fraction");
  flags.add_int("terrain", 384, "training world edge (pixels)");
  flags.add_int("scan-terrain", 512, "validation/benchmark watershed edge");
  flags.add_int("epochs", 12, "full-model training epochs");
  flags.add_int("screener-epochs", 6, "screener proxy-training epochs");
  flags.add_int("screener-batch", 64, "screener serving batch");
  flags.add_int("full-batch", 8, "full-model serving batch");
  flags.add_int("seed", 2022, "master seed (data + weights)");
  flags.add_double("ap-budget", 1.0, "allowed cascade AP drop, points");
  flags.add_double("calibration-margin", 0.5,
                   "fraction of the AP budget the calibrator may spend "
                   "(the rest absorbs validation->scan generalization)");
  flags.add_double("speedup-floor", 3.0, "required cascade tiles/sec gain");
  flags.add_double("negative-floor", 0.95,
                   "required negative-tile fraction of the scan watershed");
  flags.add_string("json", "BENCH_cascade.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  set_log_level(LogLevel::kWarn);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::int64_t tile = flags.get_int("tile");
  const std::int64_t screener_batch = flags.get_int("screener-batch");
  const std::int64_t full_batch = flags.get_int("full-batch");
  const auto spec = simgpu::a5500_spec();

  // --- Models: train the full detector, NAS-select the screener -----------
  geo::DatasetConfig data_config;
  data_config.seed = seed;
  data_config.patch_size = tile;
  data_config.terrain.rows = data_config.terrain.cols =
      static_cast<int>(flags.get_int("terrain"));
  // Grid-aligned scan tiles see crossings anywhere in the tile; train
  // with matching jitter so localization holds on the scan distribution.
  data_config.positive_jitter = tile / 2 - 4;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);

  const detect::SppNetConfig full_config = detect::sppnet_candidate2();
  Rng rng(seed + 7);
  detect::SppNet full(full_config, rng);
  detect::TrainConfig train_config;
  train_config.epochs = static_cast<int>(flags.get_int("epochs"));
  train_config.verbose = false;
  (void)detect::train_detector(full, dataset, split, train_config);

  scan::ScreenerSearchConfig screener_config;
  screener_config.runner.input_size = tile;
  screener_config.runner.latency_batch = screener_batch;
  screener_config.runner.device = spec;
  screener_config.runner.verbose = false;
  screener_config.train.epochs =
      static_cast<int>(flags.get_int("screener-epochs"));
  screener_config.train.verbose = false;
  screener_config.seed = seed + 100;
  scan::ScreenerSelection screener =
      scan::select_screener(dataset, split, screener_config);
  const bool int8_screener =
      screener.chosen.precision == simgpu::Precision::kInt8;

  // --- Serving plans + measured per-tile stage costs -----------------------
  const graph::Graph screener_graph = graph::optimize_graph(
      graph::build_inference_graph(screener.config, tile));
  const graph::Graph full_graph = graph::optimize_graph(
      graph::build_inference_graph(full_config, tile));

  scan::StagePlan stage1;
  stage1.graph = &screener_graph;
  ios::IosOptions stage1_ios;
  stage1_ios.batch = screener_batch;
  if (int8_screener) stage1_ios.precision = simgpu::Precision::kInt8;
  stage1.schedule = ios::optimize_schedule(screener_graph, spec, stage1_ios);
  stage1.server.pool = "screener";
  stage1.server.batch.max_batch = static_cast<int>(screener_batch);
  // Offline drain: the whole scan is queued at t = 0, so a long flush
  // timeout only stalls the trailing partial batch. Keep it short.
  stage1.server.batch.timeout = 2.0e-4;
  stage1.server.device = spec;
  if (int8_screener) {
    stage1.server.precision = simgpu::Precision::kInt8;
  }

  scan::StagePlan stage2;
  stage2.graph = &full_graph;
  ios::IosOptions stage2_ios;
  stage2_ios.batch = full_batch;
  stage2.schedule = ios::optimize_schedule(full_graph, spec, stage2_ios);
  stage2.server.pool = "full";
  stage2.server.batch.max_batch = static_cast<int>(full_batch);
  stage2.server.batch.timeout = 2.0e-4;
  stage2.server.device = spec;

  simgpu::Device stage1_device(spec);
  simgpu::Device stage2_device(spec);
  const double stage1_cost =
      ios::measure_latency(screener_graph, stage1.schedule, stage1_device,
                           screener_batch, 1, 3,
                           int8_screener ? simgpu::Precision::kInt8
                                         : simgpu::Precision::kFp32) /
      static_cast<double>(screener_batch);
  const double stage2_cost =
      ios::measure_latency(full_graph, stage2.schedule, stage2_device,
                           full_batch) /
      static_cast<double>(full_batch);

  // --- Calibrate on a held-out validation watershed ------------------------
  geo::GeoTransform transform;
  geo::DatasetConfig water_config = data_config;
  water_config.terrain.rows = water_config.terrain.cols =
      static_cast<int>(flags.get_int("scan-terrain"));
  water_config.roads.spacing = 256;
  water_config.roads.density = 0.4;

  scan::CascadeOptions scan_options;
  scan_options.tile_size = tile;
  scan_options.overlap = flags.get_double("overlap");
  scan_options.batch_size = screener_batch;

  Rng validation_rng(seed + 1);
  const geo::World validation =
      geo::synthesize_world(water_config, validation_rng);
  scan::CascadeOptions calibrate_options = scan_options;
  calibrate_options.threshold = 0.0;
  calibrate_options.evaluate_all = true;
  const scan::ScanResult validation_scan =
      scan::scan_watershed(validation.photo, transform, validation.crossings,
                           *screener.model, full, calibrate_options);
  // The calibrator spends only a fraction of the budget: the threshold is
  // chosen on the validation watershed but judged on the benchmark one,
  // and the margin absorbs the generalization gap between them.
  scan::CalibratorOptions calibrator;
  calibrator.max_ap_drop_points =
      flags.get_double("ap-budget") * flags.get_double("calibration-margin");
  calibrator.stage1_cost_per_tile = stage1_cost;
  calibrator.stage2_cost_per_tile = stage2_cost;
  const scan::CalibrationResult calibration =
      scan::calibrate_threshold(validation_scan.scores, calibrator);

  // --- Scan the benchmark watershed at the calibrated threshold ------------
  // evaluate_all gives the full model's AP over the same tiles (the
  // accuracy reference); `survived` still reflects the threshold, so the
  // serving simulation times the real cascade.
  geo::DatasetConfig bench_world_config = water_config;
  bench_world_config.seed = seed + 2;
  Rng bench_rng(seed + 2);
  const geo::World watershed =
      geo::synthesize_world(bench_world_config, bench_rng);
  scan::CascadeOptions bench_options = scan_options;
  bench_options.threshold = calibration.chosen.threshold;
  bench_options.evaluate_all = true;
  const scan::ScanResult result =
      scan::scan_watershed(watershed.photo, transform, watershed.crossings,
                           *screener.model, full, bench_options);
  const double ap_delta_points =
      (result.full_ap - result.cascade_ap) * 100.0;

  // --- Serving simulation: cascade vs full-only, offline drain -------------
  std::vector<bool> survived;
  survived.reserve(result.scores.size());
  for (const scan::TileScore& score : result.scores) {
    survived.push_back(score.survived);
  }
  const scan::CascadeServingReport cascade_serving =
      scan::simulate_cascade_serving(stage1, stage2, survived, 0.0);
  const serve::ServingReport full_serving =
      scan::simulate_single_stage(stage2, result.tiles, 0.0);
  const double full_tps =
      full_serving.makespan > 0.0
          ? static_cast<double>(result.tiles) / full_serving.makespan
          : 0.0;
  const double speedup =
      full_tps > 0.0 ? cascade_serving.tiles_per_sec / full_tps : 0.0;

  // --- Report + gate --------------------------------------------------------
  TextTable table({"Scan", "Tiles/s", "Makespan", "Stage-2 share", "AP"});
  table.add_row({"full only", format_double(full_tps, 0),
                 format_ms(full_serving.makespan * 1e3), "100.0%",
                 format_percent(result.full_ap)});
  table.add_row({"cascade", format_double(cascade_serving.tiles_per_sec, 0),
                 format_ms(cascade_serving.makespan * 1e3),
                 format_percent(result.survivor_fraction),
                 format_percent(result.cascade_ap)});
  std::printf("watershed %lldx%lld, %lld tiles (%.1f%% negative), "
              "screener %s (%s), threshold %.6g\n\n%s\n",
              static_cast<long long>(watershed.photo.rows()),
              static_cast<long long>(watershed.photo.cols()),
              static_cast<long long>(result.tiles),
              result.negative_fraction * 100.0,
              screener.config.name.c_str(), int8_screener ? "int8" : "fp32",
              calibration.chosen.threshold, table.to_string().c_str());

  const double speedup_floor = flags.get_double("speedup-floor");
  const double negative_floor = flags.get_double("negative-floor");
  const double ap_budget = flags.get_double("ap-budget");
  const bool speedup_ok = speedup >= speedup_floor;
  const bool accuracy_ok = ap_delta_points <= ap_budget;
  const bool negative_ok = result.negative_fraction >= negative_floor;
  std::printf("cascade speedup: %.2fx tiles/sec (target >= %.2fx) %s\n",
              speedup, speedup_floor, speedup_ok ? "OK" : "FAIL");
  std::printf("cascade AP delta: %.2f points (budget %.2f) %s\n",
              ap_delta_points, ap_budget, accuracy_ok ? "OK" : "FAIL");
  std::printf("negative tiles: %.1f%% (floor %.1f%%) %s\n",
              result.negative_fraction * 100.0, negative_floor * 100.0,
              negative_ok ? "OK" : "FAIL");

  std::ofstream json(flags.get_string("json"));
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\n"
      "  \"screener\": \"%s\",\n"
      "  \"screener_precision\": \"%s\",\n"
      "  \"full_model\": \"%s\",\n"
      "  \"tiles\": %lld,\n"
      "  \"threshold\": %.6f,\n"
      "  \"negative_fraction\": %.4f,\n"
      "  \"survivor_fraction\": %.4f,\n"
      "  \"cascade_tiles_per_sec\": %.1f,\n"
      "  \"full_tiles_per_sec\": %.1f,\n"
      "  \"speedup\": %.4f,\n"
      "  \"full_scan_ap\": %.4f,\n"
      "  \"cascade_ap\": %.4f,\n"
      "  \"ap_delta_points\": %.4f\n"
      "}\n",
      screener.config.name.c_str(), int8_screener ? "int8" : "fp32",
      full_config.name.c_str(), static_cast<long long>(result.tiles),
      calibration.chosen.threshold, result.negative_fraction,
      result.survivor_fraction, cascade_serving.tiles_per_sec, full_tps,
      speedup, result.full_ap, result.cascade_ap, ap_delta_points);
  json << buffer;
  std::printf("JSON written to %s\n", flags.get_string("json").c_str());
  return speedup_ok && accuracy_ok && negative_ok ? 0 : 1;
}
