// Reproduces the §5.3/§5.4 resource-aware NAS pipeline (Figure 5):
// random multi-trial search, real (reduced-schedule) training per trial,
// IOS-timed efficiency, and the accuracy-constrained selection
// max e(n) s.t. a(n) > A.
//
// The paper's outcome: NAS yields candidates at or above the hand-designed
// original's accuracy, and the constrained selection picks the most
// efficient of the accurate ones (SPP-Net #2 in Table 2). The analogous
// outcome here is that the selected trial satisfies the constraint and
// strictly maximizes throughput among qualifying trials.
#include <cstdio>
#include <fstream>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/time.hpp"
#include "detect/trainer.hpp"
#include "geo/dataset.hpp"
#include "graph/builder.hpp"
#include "ios/schedule_cache.hpp"
#include "ios/scheduler.hpp"
#include "nas/runner.hpp"
#include "nas/selection.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_nas_pipeline", "Figure-5 NAS pipeline, end to end");
  flags.add_int("trials", 5, "NAS trials");
  flags.add_int("epochs", 8, "training epochs per trial");
  flags.add_int("patch", 40, "trial patch size");
  flags.add_double("threshold", 0.30, "accuracy constraint A");
  flags.add_int("seed", 2023, "seed");
  flags.add_int("jobs", 1, "worker threads evaluating trials concurrently");
  flags.add_string("csv", "nas_pipeline.csv", "trial CSV export");
  if (!flags.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);
  const int jobs = static_cast<int>(flags.get_int("jobs"));
  if (jobs > 1) {
    // Trial-level workers own the parallelism; keep the intra-trial loops
    // serial so jobs x set_num_threads stays at the core count.
    set_num_threads(1);
  }

  WallTimer timer;
  geo::DatasetConfig data_config;
  data_config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  data_config.patch_size = flags.get_int("patch");
  data_config.terrain.rows = data_config.terrain.cols = 512;
  const auto dataset = geo::DrainageDataset::synthesize(data_config);
  const geo::Split split = dataset.split(0.8, 3);
  std::printf(
      "NAS pipeline — random multi-trial over the §4.2 space\n"
      "dataset: %zu patches, %d epochs/trial, constraint AP > %.2f\n\n",
      dataset.size(), static_cast<int>(flags.get_int("epochs")),
      flags.get_double("threshold"));

  nas::Evaluator evaluator = [&](const detect::SppNetConfig& config) {
    Rng rng(11);
    detect::SppNet model(config, rng);
    detect::TrainConfig train_config;
    train_config.epochs = static_cast<int>(flags.get_int("epochs"));
    train_config.verbose = false;
    return detect::train_detector(model, dataset, split, train_config)
        .final_eval.average_precision;
  };

  nas::SearchSpace space;
  nas::RandomSearchStrategy strategy(
      space, static_cast<std::uint64_t>(flags.get_int("seed")));
  nas::RunnerConfig runner_config;
  runner_config.max_trials = static_cast<int>(flags.get_int("trials"));
  runner_config.input_size = data_config.patch_size;
  runner_config.verbose = false;
  runner_config.jobs = jobs;
  const nas::TrialDatabase db =
      nas::run_multi_trial(strategy, evaluator, runner_config);
  const double campaign_seconds = timer.seconds();

  TextTable table(
      {"Trial", "Architecture", "AP", "Latency (opt)", "Throughput"});
  for (const nas::Trial& t : db.trials()) {
    table.add_row({std::to_string(t.index), t.point.to_string(),
                   format_percent(t.metrics.average_precision),
                   format_ms(t.metrics.optimized_latency * 1e3),
                   format_double(t.metrics.throughput, 0) + " img/s"});
  }
  std::printf("%s", table.to_string().c_str());

  const auto best = nas::select_constrained(db, flags.get_double("threshold"));
  if (best) {
    std::printf("\nconstrained selection: trial %d [%s] — AP %s at %.0f "
                "img/s\n",
                best->index, best->point.to_string().c_str(),
                format_percent(best->metrics.average_precision).c_str(),
                best->metrics.throughput);
  } else {
    std::printf("\nno trial satisfied the constraint (rerun with more "
                "epochs/trials)\n");
  }
  const ios::ScheduleCacheStats campaign_stats =
      ios::ScheduleCache::global().stats();
  std::printf(
      "\ncampaign: %.1f s at %d job(s); schedule cache: %lld/%lld block "
      "hits, %lld/%lld cost hits\n",
      campaign_seconds, jobs,
      static_cast<long long>(campaign_stats.block_hits),
      static_cast<long long>(campaign_stats.block_hits +
                             campaign_stats.block_misses),
      static_cast<long long>(campaign_stats.cost_hits),
      static_cast<long long>(campaign_stats.cost_hits +
                             campaign_stats.cost_misses));

  // Schedule-cache ablation: run the scheduling step (IOS DP + analytic
  // cost) over every coordinate of the §4.2 space, cold (cleared cache)
  // then warm. The warm/cold ratio is the amortization a cached campaign
  // sees on its scheduling work — independent of core count, unlike the
  // --jobs speedup.
  const auto sweep = [&] {
    nas::SearchSpace space_for_sweep;
    double checksum = 0.0;
    for (const nas::SearchPoint& point : space_for_sweep.enumerate()) {
      const detect::SppNetConfig model = nas::materialize(point);
      const graph::Graph g =
          graph::build_inference_graph(model, data_config.patch_size);
      const ios::Schedule schedule =
          ios::optimize_schedule(g, runner_config.device, ios::IosOptions{});
      checksum += ios::schedule_cost(g, runner_config.device, schedule, 1);
    }
    return checksum;
  };
  ios::ScheduleCache::global().set_enabled(false);
  WallTimer cold_timer;
  const double cold_checksum = sweep();
  const double cold = cold_timer.seconds();
  ios::ScheduleCache::global().set_enabled(true);
  ios::ScheduleCache::global().clear();
  sweep();  // prime: fills the cache the way a campaign's early trials do
  WallTimer warm_timer;
  const double warm_checksum = sweep();
  const double warm = warm_timer.seconds();
  const ios::ScheduleCacheStats stats = ios::ScheduleCache::global().stats();
  DCN_CHECK(cold_checksum == warm_checksum) << "cache changed schedules";
  std::printf(
      "schedule-cache ablation (%lld-point space): cold %.3f s, warm %.3f s "
      "— %.1fx; block hits %lld/%lld, cost hits %lld/%lld\n",
      static_cast<long long>(nas::SearchSpace{}.size()), cold, warm,
      warm > 0.0 ? cold / warm : 0.0,
      static_cast<long long>(stats.block_hits),
      static_cast<long long>(stats.block_hits + stats.block_misses),
      static_cast<long long>(stats.cost_hits),
      static_cast<long long>(stats.cost_hits + stats.cost_misses));

  std::ofstream csv(flags.get_string("csv"));
  csv << db.to_csv();
  std::printf("CSV written to %s (total %.0f s)\n",
              flags.get_string("csv").c_str(), timer.seconds());
  return 0;
}
