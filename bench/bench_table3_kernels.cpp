// Reproduces Table 3: GPU-kernel time share per operator class (Matrix
// Multiplication / Pooling / Conv) across batch sizes 1..64.
//
// Paper claim: at batch 1 the fully-connected GEMMs dominate (41.6%); as
// batch grows, convolution work scales with the batch while the FC layers
// stay weight-read bound, so Conv overtakes everything (77.2% at 64).
// The simulated device reproduces the mechanism directly: FC kernel time
// is dominated by streaming the weight matrix from DRAM (batch-invariant),
// conv kernel time by batch-scaled FLOPs.
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_table3_kernels",
                 "reproduce Table 3 (kernel mix vs batch size)");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("iterations", 10, "profiled iterations per batch size");
  flags.add_string("csv", "table3.csv", "CSV export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  std::printf(
      "Table 3 — GPU kernel time share per operator class (%s)\n"
      "paper reference in parentheses\n\n",
      model.name.c_str());

  struct PaperRow {
    int batch;
    double matmul, pooling, conv;
  };
  const PaperRow paper[] = {{1, 41.6, 14.1, 7.7},  {2, 34.8, 14.4, 9.7},
                            {4, 39.9, 13.5, 9.5},  {8, 34.8, 13.7, 10.0},
                            {16, 18.1, 17.1, 16.6}, {32, 15.7, 14.7, 13.4},
                            {64, 7.4, 8.6, 77.2}};

  TextTable table({"Batch", "MatMul % (paper)", "Pooling % (paper)",
                   "Conv % (paper)", "Elementwise %"});
  CsvWriter csv({"batch", "matmul_pct", "pooling_pct", "conv_pct",
                 "elementwise_pct", "memory_pct", "paper_matmul",
                 "paper_pooling", "paper_conv"});

  for (const PaperRow& row : paper) {
    ios::IosOptions options;
    options.batch = row.batch;
    const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);
    profiler::Recorder recorder;
    simgpu::Device device(spec, &recorder);
    ios::InferenceSession session(g, schedule, device);
    session.initialize();
    recorder.clear();  // profile steady-state kernels only
    for (int i = 0; i < flags.get_int("iterations"); ++i) {
      (void)session.run(row.batch);
    }
    const double matmul =
        profiler::kernel_share(recorder, profiler::KernelCategory::kMatMul);
    const double pooling =
        profiler::kernel_share(recorder, profiler::KernelCategory::kPooling);
    const double conv =
        profiler::kernel_share(recorder, profiler::KernelCategory::kConv);
    const double elem = profiler::kernel_share(
        recorder, profiler::KernelCategory::kElementwise);
    const double memory =
        profiler::kernel_share(recorder, profiler::KernelCategory::kMemory);

    auto cell = [](double ours, double theirs) {
      return format_double(ours * 100.0, 1) + " (" +
             format_double(theirs, 1) + ")";
    };
    table.add_row({std::to_string(row.batch), cell(matmul, row.matmul),
                   cell(pooling, row.pooling), cell(conv, row.conv),
                   format_double(elem * 100.0, 1)});
    csv.add_row({std::to_string(row.batch), format_double(matmul * 100, 2),
                 format_double(pooling * 100, 2),
                 format_double(conv * 100, 2), format_double(elem * 100, 2),
                 format_double(memory * 100, 2),
                 format_double(row.matmul, 1), format_double(row.pooling, 1),
                 format_double(row.conv, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nshape check: MatMul share falls with batch while Conv share rises "
      "and dominates at 64 — matching the paper's trend.\n");
  csv.write(flags.get_string("csv"));
  std::printf("CSV written to %s\n", flags.get_string("csv").c_str());
  return 0;
}
