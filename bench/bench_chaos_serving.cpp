// Chaos-schedule acceptance benchmark for the self-healing serve fleet.
//
// Claim under test (DESIGN.md "Fleet failure model & self-healing"): with
// health-checked replicas, crash re-dispatch, hedged requests, and
// INT8-degraded load shedding, the fleet rides out a seeded chaos schedule
// — a permanent crash storm plus a straggler wave under doubled load —
// with zero accepted-request loss, bounded recovery time, and SLO
// attainment within a few points of the fault-free run.
//
// The same trace is served twice: once fault-free (the availability
// baseline) and once under the chaos schedule. Both runs are pure
// functions of (config, seed), so the exported goodput / availability /
// recovery numbers are byte-stable and CI gates them against
// bench/baselines/BENCH_chaos.json via tools/bench_compare.py.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "serve/server.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

namespace {

dcn::detect::SppNetConfig pick_model(std::int64_t candidate) {
  switch (candidate) {
    case 0:
      return dcn::detect::original_sppnet();
    case 1:
      return dcn::detect::sppnet_candidate1();
    case 2:
      return dcn::detect::sppnet_candidate2();
    case 3:
      return dcn::detect::sppnet_candidate3();
    default:
      throw dcn::ConfigError("--candidate must be 0..3, got " +
                             std::to_string(candidate));
  }
}

/// Fraction of admitted requests that were not lost (kFailed). 1.0 is the
/// acceptance target: crashes may expire deadlines, but an accepted request
/// must never vanish while any replica survives.
double availability(const dcn::serve::ServingReport& report) {
  if (report.admitted == 0) return 1.0;
  return static_cast<double>(report.admitted - report.failed) /
         static_cast<double>(report.admitted);
}

void json_block(std::ofstream& os, const char* name,
                const dcn::serve::ServingReport& report, bool fleet) {
  char buffer[768];
  std::snprintf(buffer, sizeof(buffer),
                "  \"%s\": {\n"
                "    \"goodput_rps\": %.3f,\n"
                "    \"throughput_rps\": %.3f,\n"
                "    \"slo_attainment\": %.4f,\n"
                "    \"availability\": %.4f,\n"
                "    \"reject_rate\": %.4f,\n"
                "    \"p99_ms\": %.4f,\n"
                "    \"completed\": %lld,\n"
                "    \"failed\": %lld",
                name, report.goodput(), report.throughput,
                report.slo_attainment(), availability(report),
                report.reject_rate(), report.p99 * 1e3,
                static_cast<long long>(report.completed),
                static_cast<long long>(report.failed));
  os << buffer;
  if (fleet) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\n"
                  "    \"recovery_s\": %.4f,\n"
                  "    \"deaths\": %lld,\n"
                  "    \"respawns\": %lld,\n"
                  "    \"replicas_lost\": %d,\n"
                  "    \"crash_redispatches\": %lld,\n"
                  "    \"hedges_won\": %lld,\n"
                  "    \"degraded_served\": %lld",
                  report.time_to_recovery,
                  static_cast<long long>(report.deaths),
                  static_cast<long long>(report.respawns),
                  report.replicas_lost,
                  static_cast<long long>(report.crash_redispatches),
                  static_cast<long long>(report.hedges_won),
                  static_cast<long long>(report.degraded_served));
    os << buffer;
  }
  os << "\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_chaos_serving",
                 "self-healing fleet vs a seeded chaos schedule");
  flags.add_int("candidate", 2, "SPP-Net variant (0=original, 1..3)");
  flags.add_int("input", 100, "input patch size");
  flags.add_double("duration", 8.0, "trace length, virtual seconds");
  flags.add_double("rate", 0.0,
                   "offered load, req/s (0 = --load x single-replica "
                   "capacity)");
  flags.add_double("load", 2.0, "auto-rate multiple of one replica's "
                   "capacity");
  flags.add_int("max-batch", 8, "dynamic batcher size bound");
  flags.add_double("timeout-ms", 2.0, "batching timeout, milliseconds");
  flags.add_int("queue", 64, "admission queue capacity");
  flags.add_int("replicas", 8, "fleet size");
  flags.add_int("int8-replicas", 2,
                "replicas at the tail of the fleet serving INT8 (the "
                "degraded shed pool; 0 = uniform fp32)");
  flags.add_double("deadline-ms", 100.0, "per-request SLO");
  flags.add_double("burst", 1.0, "burst factor (1 = doubled load in-burst)");
  flags.add_double("burst-period", 4.0, "burst period, seconds");
  flags.add_double("burst-duty", 0.5, "in-burst fraction of each period");
  flags.add_string("chaos",
                   "crash:at=2,kills=2;straggle:at=4,dur=2,count=2,factor=8",
                   "chaos schedule spec (see serve/chaos.hpp)");
  flags.add_int("chaos-seed", 1234, "chaos victim-draw seed");
  flags.add_int("hedge", 1, "race hedges against stragglers (0 disables)");
  flags.add_int("shed", 1,
                "degrade to the INT8 pool under queue pressure (0 "
                "disables)");
  flags.add_int("seed", 42, "traffic seed");
  flags.add_bool("no-fuse", false,
                 "serve the naive graph (skip the optimizer passes)");
  flags.add_string("json", "BENCH_chaos.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = pick_model(flags.get_int("candidate"));
  const graph::Graph naive =
      graph::build_inference_graph(model, flags.get_int("input"));
  const graph::Graph g =
      flags.get_bool("no-fuse") ? naive : graph::optimize_graph(naive);
  const int max_batch = static_cast<int>(flags.get_int("max-batch"));
  const int replicas = static_cast<int>(flags.get_int("replicas"));
  const int int8_replicas = static_cast<int>(flags.get_int("int8-replicas"));
  if (int8_replicas < 0 || int8_replicas > replicas)
    throw ConfigError("--int8-replicas must be in [0, --replicas]");

  ios::IosOptions options;
  options.batch = max_batch;
  const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);

  // Anchor offered load to one replica's serial capacity, so "--load 2" on
  // an 8-replica fleet is a comfortably served stream whose burst windows
  // still bite once chaos halves the fleet.
  simgpu::Device probe(spec);
  const double serial_latency = ios::measure_latency(g, schedule, probe, 1);
  double rate = flags.get_double("rate");
  if (rate <= 0.0) rate = flags.get_double("load") / serial_latency;

  serve::TrafficConfig traffic;
  traffic.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  traffic.duration = flags.get_double("duration");
  traffic.rate = rate;
  traffic.burst_factor = flags.get_double("burst");
  traffic.burst_period = flags.get_double("burst-period");
  traffic.burst_duty = flags.get_double("burst-duty");
  traffic.deadline = flags.get_double("deadline-ms") * 1e-3;
  const auto trace = serve::generate_trace(traffic);

  serve::ServerConfig config;
  config.batch.max_batch = max_batch;
  config.batch.timeout = flags.get_double("timeout-ms") * 1e-3;
  config.queue_capacity = static_cast<std::size_t>(flags.get_int("queue"));
  config.replicas = replicas;
  config.device = spec;
  if (int8_replicas > 0) {
    config.replica_precisions.assign(
        static_cast<std::size_t>(replicas), simgpu::Precision::kFp32);
    for (int r = replicas - int8_replicas; r < replicas; ++r)
      config.replica_precisions[static_cast<std::size_t>(r)] =
          simgpu::Precision::kInt8;
  }
  config.fleet.hedge.enabled = flags.get_int("hedge") != 0;
  config.fleet.hedge.factor = 2.0;
  config.fleet.shed.enabled =
      flags.get_int("shed") != 0 && int8_replicas > 0;
  config.fleet.shed.degrade_watermark = 0.5;
  config.fleet.shed.restore_watermark = 0.125;

  const std::string chaos_spec = flags.get_string("chaos");
  std::printf(
      "chaos acceptance: %zu requests over %.1fs (%.0f req/s offered, "
      "%s, %s)\n"
      "fleet: %d replicas (%d int8), hedge %s, shed %s\n"
      "schedule: %s (seed %lld)\n\n",
      trace.size(), traffic.duration, rate, model.name.c_str(),
      spec.name.c_str(), replicas, int8_replicas,
      config.fleet.hedge.enabled ? "on" : "off",
      config.fleet.shed.enabled ? "on" : "off", chaos_spec.c_str(),
      static_cast<long long>(flags.get_int("chaos-seed")));

  const auto run = [&](const serve::ChaosConfig& chaos) {
    serve::ServerConfig run_config = config;
    run_config.fleet.chaos = chaos;
    serve::Server server(g, schedule, run_config);
    return server.serve(trace);
  };

  const serve::ServingReport clean = run({});
  const serve::ServingReport chaos = run(serve::ChaosConfig::parse(
      chaos_spec, static_cast<std::uint64_t>(flags.get_int("chaos-seed"))));

  TextTable table({"Run", "Goodput", "SLO", "Avail", "p99", "Rejected",
                   "Failed", "Recovery"});
  const auto row = [&](const char* name,
                       const serve::ServingReport& report) {
    table.add_row({name, format_double(report.goodput(), 0) + " req/s",
                   format_percent(report.slo_attainment()),
                   format_percent(availability(report)),
                   format_ms(report.p99 * 1e3),
                   format_percent(report.reject_rate()),
                   std::to_string(report.failed),
                   report.time_to_recovery > 0.0
                       ? format_double(report.time_to_recovery, 2) + " s"
                       : "-"});
  };
  row("fault-free", clean);
  row("chaos", chaos);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", chaos.to_string().c_str());

  const double slo_gap = clean.slo_attainment() - chaos.slo_attainment();
  std::printf(
      "accepted-request loss under chaos: %lld (target: 0)\n"
      "SLO gap vs fault-free: %.1f points (target: <= 10)\n",
      static_cast<long long>(chaos.failed), slo_gap * 100.0);

  std::ofstream json(flags.get_string("json"));
  json << "{\n";
  char header[384];
  std::snprintf(header, sizeof(header),
                "  \"model\": \"%s\",\n  \"offered_rate_rps\": %.1f,\n"
                "  \"duration_s\": %.1f,\n  \"replicas\": %d,\n"
                "  \"int8_replicas\": %d,\n  \"chaos_spec\": \"%s\",\n",
                model.name.c_str(), rate, traffic.duration, replicas,
                int8_replicas, chaos_spec.c_str());
  json << header;
  json_block(json, "clean", clean, false);
  json << ",\n";
  json_block(json, "chaos", chaos, true);
  char tail[96];
  std::snprintf(tail, sizeof(tail), ",\n  \"slo_gap_points\": %.2f\n}\n",
                slo_gap * 100.0);
  json << tail;
  std::printf("JSON written to %s\n", flags.get_string("json").c_str());
  return 0;
}
