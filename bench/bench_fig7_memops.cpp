// Reproduces Figure 7: GPU memory-operation timing vs batch size.
//
// Paper claim: the per-inference memory-operation timing drops as batch
// grows and stabilizes (≈19168 ns from batch 16 on their A5500), and GPU
// memory capacity is never the constraint (usage far below 24 GB even at
// batch 64). On the simulated device the same two observations hold: the
// per-image H2D time falls to the PCIe-bandwidth floor and flattens, and
// live device memory stays orders of magnitude under capacity.
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "profiler/report.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

namespace {

// Activation bytes one inference moves through DRAM per sample: the sum of
// every device op's (input read + output write). Fused ops count only their
// real input and output — the eliminated intermediate is exactly what the
// optimizer saves, and what OpNode::activation_bytes used to double-count.
double activation_traffic(const dcn::graph::Graph& g) {
  double total = 0.0;
  for (const dcn::graph::OpNode& node : g.nodes()) {
    if (!dcn::simgpu::is_device_op(node.kind)) continue;
    total += node.activation_bytes(g.input_desc(node.id));
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_fig7_memops",
                 "reproduce Figure 7 (memop timing vs batch size)");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("iterations", 10, "profiled iterations per batch size");
  flags.add_string("csv", "fig7.csv", "CSV export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  std::printf(
      "Figure 7 — GPU memory operation timing vs batch size (%s)\n"
      "(paper: stabilizes at 19168 ns from batch 16; ours stabilizes at "
      "the simulated PCIe floor)\n\n",
      model.name.c_str());

  TextTable table({"Batch", "Memops", "Mean memop (ns)",
                   "Per-image memop (ns)", "Live device memory (MiB)"});
  CsvWriter csv({"batch", "memop_count", "mean_memop_ns",
                 "per_image_memop_ns", "total_memop_us", "live_bytes"});

  for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule schedule = ios::optimize_schedule(g, spec, options);
    profiler::Recorder recorder;
    simgpu::Device device(spec, &recorder);
    ios::InferenceSession session(g, schedule, device);
    session.initialize();
    recorder.clear();  // exclude the one-time weight upload
    const int iterations = static_cast<int>(flags.get_int("iterations"));
    for (int i = 0; i < iterations; ++i) (void)session.run(batch);

    const profiler::MemopSummary memops = profiler::memop_summary(recorder);
    const double per_image_ns = memops.total_seconds * 1e9 /
                                (static_cast<double>(batch) * iterations);
    table.add_row(
        {std::to_string(batch), std::to_string(memops.count),
         format_double(memops.mean_seconds * 1e9, 0),
         format_double(per_image_ns, 0),
         format_double(device.memory().live_bytes() / 1048576.0, 1)});
    csv.add_row({std::to_string(batch), std::to_string(memops.count),
                 format_double(memops.mean_seconds * 1e9, 1),
                 format_double(per_image_ns, 1),
                 format_double(memops.total_seconds * 1e6, 2),
                 std::to_string(device.memory().live_bytes())});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nmemory is not the constraint: live usage stays far below the "
      "%.0f GiB capacity at every batch size, as the paper observes.\n",
      spec.dram_bytes / 1073741824.0);

  // Fusion ablation: the optimizer's eliminated intermediates show up as an
  // activation-traffic and kernel-launch drop at every batch size (the
  // per-sample numbers are batch-independent, so one row tells the story).
  const graph::Graph fused = graph::optimize_graph(g);
  const double naive_bytes = activation_traffic(g);
  const double fused_bytes = activation_traffic(fused);
  const auto naive_launches = graph::device_op_count(g);
  const auto fused_launches = graph::device_op_count(fused);
  TextTable fusion({"Graph", "Kernel launches", "Activation MiB/sample"});
  fusion.add_row({"naive", std::to_string(naive_launches),
                  format_double(naive_bytes / 1048576.0, 2)});
  fusion.add_row({"fused", std::to_string(fused_launches),
                  format_double(fused_bytes / 1048576.0, 2)});
  std::printf(
      "\nfusion ablation — activation DRAM traffic per sample:\n%s"
      "fused graph eliminates %.1f%% of kernel launches and %.1f%% of "
      "activation traffic (the intermediates the epilogues absorb).\n",
      fusion.to_string().c_str(),
      100.0 * (1.0 - static_cast<double>(fused_launches) /
                         static_cast<double>(naive_launches)),
      100.0 * (1.0 - fused_bytes / naive_bytes));
  csv.write(flags.get_string("csv"));
  std::printf("CSV written to %s\n", flags.get_string("csv").c_str());
  return 0;
}
