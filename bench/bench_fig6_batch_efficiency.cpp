// Reproduces Figure 6: inference efficiency (latency / batch size) for the
// sequential and IOS-optimized schedules of SPP-Net #2 across batch sizes
// 1..64.
//
// Paper claim: efficiency improves with batch size with diminishing gains
// approaching batch 32, which is selected as the operating point. The
// simulated device reproduces the shape: per-image latency falls steeply
// while launch/stage overheads amortize, then flattens once the SMs
// saturate; the gain from 32 -> 64 is marginal.
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_fig6_batch_efficiency",
                 "reproduce Figure 6 (efficiency vs batch size)");
  flags.add_int("input", 100, "input patch size");
  flags.add_string("csv", "fig6.csv", "CSV export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const detect::SppNetConfig model = detect::sppnet_candidate2();
  const graph::Graph g =
      graph::build_inference_graph(model, flags.get_int("input"));
  std::printf("Figure 6 — inference efficiency vs batch size (%s, %s)\n\n",
              model.name.c_str(), spec.name.c_str());

  TextTable table({"Batch", "Sequential (ms/img)", "Optimized (ms/img)",
                   "Gain vs prev batch", "IOS speedup"});
  CsvWriter csv({"batch", "seq_latency_ms", "opt_latency_ms",
                 "seq_ms_per_image", "opt_ms_per_image", "ios_speedup"});

  const ios::Schedule seq = ios::sequential_schedule(g);
  double prev_eff = 0.0;
  std::int64_t best_batch = 1;
  double best_marginal_gain = 0.0;
  for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
    // IOS re-optimizes the schedule per batch size, as the paper does.
    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule opt = ios::optimize_schedule(g, spec, options);
    simgpu::Device d_seq(spec);
    simgpu::Device d_opt(spec);
    const double t_seq = ios::measure_latency(g, seq, d_seq, batch);
    const double t_opt = ios::measure_latency(g, opt, d_opt, batch);
    const double eff_seq = t_seq * 1e3 / static_cast<double>(batch);
    const double eff_opt = t_opt * 1e3 / static_cast<double>(batch);
    const double gain = prev_eff > 0.0 ? prev_eff / eff_opt : 1.0;
    // The paper's operating point: the last batch size with a significant
    // (>10%) efficiency gain over the previous one.
    if (gain > 1.10) {
      best_batch = batch;
      best_marginal_gain = gain;
    }
    table.add_row({std::to_string(batch), format_double(eff_seq, 4),
                   format_double(eff_opt, 4),
                   prev_eff > 0.0 ? format_double(gain, 2) + "x" : "-",
                   format_double(t_seq / t_opt, 2) + "x"});
    csv.add_row({std::to_string(batch), format_double(t_seq * 1e3, 4),
                 format_double(t_opt * 1e3, 4), format_double(eff_seq, 5),
                 format_double(eff_opt, 5),
                 format_double(t_seq / t_opt, 3)});
    prev_eff = eff_opt;
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\noptimal batch size by diminishing-gain rule: %lld "
      "(last >10%% marginal gain: %.2fx) — the paper selects 32\n",
      static_cast<long long>(best_batch), best_marginal_gain);
  csv.write(flags.get_string("csv"));
  std::printf("CSV written to %s\n", flags.get_string("csv").c_str());
  return 0;
}
