// Datacenter-scale serving bench: pipeline-parallel sharded fleet vs
// whole-model replicas, equal device count, on a model too large for one
// device's memory budget.
//
// Claim under test (ISSUE 10): when the model does not fit a single
// device (weights + activation workspace exceed DRAM), a whole-model
// replica must stream the non-resident weights over PCIe on every run
// (ios weight paging) — a per-batch tax that dwarfs compute. Partitioning
// the model into K memory-feasible stages (shard::partition_graph) and
// serving it as pipeline groups of K devices each (shard::PipelineGroup)
// removes the paging tax at the price of pipeline fill/drain bubbles and
// cut-activation transfers. The bench serves the same seeded diurnal
// trace (~1M requests by default) through both fleets — N whole-model
// replicas with paging enabled vs N/K pipeline groups — and gates on
// accepted-request throughput ratio >= 1.5x at equal-or-better SLO
// attainment. Results export to BENCH_pipeline.json for the CI gate.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "graph/passes.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "serve/server.hpp"
#include "shard/partition.hpp"
#include "shard/pipeline.hpp"
#include "simgpu/device.hpp"
#include "simgpu/kernels.hpp"

namespace {

dcn::detect::SppNetConfig pick_model(std::int64_t candidate) {
  switch (candidate) {
    case 0:
      return dcn::detect::original_sppnet();
    case 1:
      return dcn::detect::sppnet_candidate1();
    case 2:
      return dcn::detect::sppnet_candidate2();
    case 3:
      return dcn::detect::sppnet_candidate3();
    default:
      throw dcn::ConfigError("--candidate must be 0..3, got " +
                             std::to_string(candidate));
  }
}

/// The residency a whole-model session needs: full-precision weights plus
/// the ping-pong activation workspace (InferenceSession::initialize).
std::int64_t whole_model_resident_bytes(const dcn::graph::Graph& g) {
  std::int64_t max_activation = 0;
  for (const auto& node : g.nodes()) {
    max_activation = std::max(max_activation, node.output.numel() * 4);
  }
  return static_cast<std::int64_t>(dcn::simgpu::total_weight_bytes(g)) +
         2 * max_activation * 64;
}

struct FleetResult {
  dcn::serve::ServingReport report;
  double bubble_fraction = 0.0;  // pipeline fleet only
};

void json_block(std::ofstream& os, const char* name,
                const FleetResult& fleet) {
  const dcn::serve::ServingReport& r = fleet.report;
  char buffer[640];
  std::snprintf(buffer, sizeof(buffer),
                "  \"%s\": {\n"
                "    \"throughput_rps\": %.3f,\n"
                "    \"p50_ms\": %.4f,\n"
                "    \"p99_ms\": %.4f,\n"
                "    \"slo_attainment\": %.4f,\n"
                "    \"reject_rate\": %.4f,\n"
                "    \"completed\": %lld,\n"
                "    \"devices\": %d,\n"
                "    \"cost_per_request_device_ms\": %.5f,\n"
                "    \"bubble_fraction\": %.4f\n"
                "  }",
                name, r.throughput, r.p50 * 1e3, r.p99 * 1e3,
                r.slo_attainment(), r.reject_rate(),
                static_cast<long long>(r.completed), r.devices,
                r.cost_per_request() * 1e3, fleet.bubble_fraction);
  os << buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_pipeline_serving",
                 "pipeline-parallel sharded fleet vs paging whole-model "
                 "replicas at equal device count");
  flags.add_int("candidate", 2, "SPP-Net variant (0=original, 1..3)");
  flags.add_int("input", 100, "input patch size");
  flags.add_int("devices", 192, "total simulated devices per fleet");
  flags.add_int("pipeline-stages", 4, "stages K per pipeline group");
  flags.add_int("microbatch", 4, "samples per pipeline microbatch");
  flags.add_int("pipe-queue", 2, "inter-stage queue depth (backpressure)");
  flags.add_double("mem-frac", 0.74,
                   "device DRAM as a fraction of the whole model's "
                   "residency (< 1 forces replica weight paging)");
  flags.add_int("max-batch", 8, "dynamic batcher size bound");
  flags.add_double("timeout-ms", 2.0, "batching timeout, milliseconds");
  flags.add_int("queue", 64, "admission queue capacity");
  flags.add_double("requests", 1.0e6, "target trace size (sets duration)");
  flags.add_double("rate", 0.0,
                   "offered load, req/s (0 = --load x paged-replica fleet "
                   "capacity)");
  flags.add_double("load", 2.0, "auto-rate multiple of replica capacity");
  flags.add_double("deadline-ms", 25.0, "per-request SLO (0 disables)");
  flags.add_double("burst", 1.4, "traffic burst factor");
  flags.add_double("diurnal", 0.35, "diurnal modulation amplitude");
  flags.add_int("seed", 1, "traffic seed");
  flags.add_string("json", "BENCH_pipeline.json", "JSON export path");
  if (!flags.parse(argc, argv)) return 0;

  const detect::SppNetConfig model = pick_model(flags.get_int("candidate"));
  const graph::Graph g = graph::optimize_graph(
      graph::build_inference_graph(model, flags.get_int("input")));

  const int devices = static_cast<int>(flags.get_int("devices"));
  const int stages = static_cast<int>(flags.get_int("pipeline-stages"));
  if (devices < 1 || stages < 1 || devices % stages != 0) {
    throw ConfigError("--devices must be a positive multiple of "
                      "--pipeline-stages for the equal-device comparison");
  }
  const int groups = devices / stages;
  const int max_batch = static_cast<int>(flags.get_int("max-batch"));
  const std::int64_t microbatch = flags.get_int("microbatch");

  // Shrink DRAM below the whole model's residency so a single device can
  // only serve it by paging weights, while each pipeline stage still fits.
  const std::int64_t whole_bytes = whole_model_resident_bytes(g);
  simgpu::DeviceSpec spec = simgpu::a5500_spec();
  spec.dram_bytes = static_cast<std::int64_t>(
      flags.get_double("mem-frac") * static_cast<double>(whole_bytes));

  ios::IosOptions batch_options;
  batch_options.batch = max_batch;
  const ios::Schedule batch_schedule =
      ios::optimize_schedule(g, spec, batch_options);

  // Stage schedules are optimized at the microbatch size the pipeline
  // executor actually runs, so the DP balances the costs that get paid.
  shard::PartitionOptions popts;
  popts.stages = stages;
  popts.ios.batch = microbatch;
  const shard::Partition partition = shard::partition_graph(g, spec, popts);

  ios::ResilientOptions resilient;
  resilient.retry.max_attempts = 4;
  resilient.retry.base_backoff = 1.0e-4;
  resilient.retry.max_backoff = 1.0e-2;

  shard::PipelineOptions pipe_options;
  pipe_options.microbatch = microbatch;
  pipe_options.queue_capacity = static_cast<int>(flags.get_int("pipe-queue"));
  pipe_options.resilient = resilient;

  // Probe both shapes once to anchor offered load: a paged replica's batch
  // time sets the replica fleet's capacity, so "--load 2" means the same
  // overload on every host.
  simgpu::Device probe(spec);
  ios::InferenceSession probe_session(g, batch_schedule, probe,
                                      simgpu::Precision::kFp32,
                                      /*allow_weight_paging=*/true);
  probe_session.initialize();
  const double replica_batch_seconds =
      probe_session.run(max_batch).latency_seconds;
  const std::int64_t paged_bytes = probe_session.paged_weight_bytes();
  shard::PipelineGroup probe_group(partition, spec, pipe_options);
  const double pipeline_batch_seconds =
      probe_group.serve_batch(0.0, max_batch).end;

  double rate = flags.get_double("rate");
  const double replica_capacity = static_cast<double>(devices) *
                                  static_cast<double>(max_batch) /
                                  replica_batch_seconds;
  if (rate <= 0.0) rate = flags.get_double("load") * replica_capacity;

  serve::TrafficConfig traffic;
  traffic.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  traffic.rate = rate;
  traffic.burst_factor = flags.get_double("burst");
  // Duration targets --requests actual arrivals: the burst pulse raises
  // the mean rate by (1 + factor x duty) over each burst period.
  traffic.duration =
      flags.get_double("requests") /
      (rate * (1.0 + traffic.burst_factor * traffic.burst_duty));
  traffic.diurnal_amplitude = flags.get_double("diurnal");
  traffic.diurnal_period = traffic.duration;
  traffic.deadline = flags.get_double("deadline-ms") * 1e-3;
  const auto trace = serve::generate_trace(traffic);

  std::printf(
      "model %s (input %lld): residency %.1f MB, device DRAM %.1f MB\n"
      "replica pages %.1f MB/run -> batch-%d service %.3f ms\n"
      "pipeline %dx%d stages (microbatch %lld): batch-%d service %.3f ms, "
      "stage bottleneck %.3f ms\n"
      "serving %zu requests over %.1fs (%.0f req/s offered, %.2fx replica "
      "capacity)\n\n",
      model.name.c_str(), static_cast<long long>(flags.get_int("input")),
      static_cast<double>(whole_bytes) / 1e6,
      static_cast<double>(spec.dram_bytes) / 1e6,
      static_cast<double>(paged_bytes) / 1e6, max_batch,
      replica_batch_seconds * 1e3, groups, stages,
      static_cast<long long>(microbatch), max_batch,
      pipeline_batch_seconds * 1e3, partition.bottleneck_seconds * 1e3,
      trace.size(), traffic.duration, rate, rate / replica_capacity);

  serve::ServerConfig base_config;
  base_config.batch.max_batch = max_batch;
  base_config.batch.timeout = flags.get_double("timeout-ms") * 1e-3;
  base_config.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue"));
  base_config.device = spec;
  base_config.resilient = resilient;

  // Fleet A: N whole-model replicas, each paying the paging tax.
  const auto run_replica_fleet = [&]() {
    serve::ServerConfig config = base_config;
    config.replicas = devices;
    config.resilient.allow_weight_paging = true;
    serve::Server server(g, batch_schedule, config);
    FleetResult result;
    result.report = server.serve(trace);
    return result;
  };

  // Fleet B: N/K pipeline groups over the same N devices, no paging.
  const auto run_pipeline_fleet = [&]() {
    serve::ServerConfig config = base_config;
    config.replicas = 0;
    std::vector<std::unique_ptr<serve::Backend>> backends;
    std::vector<shard::PipelineGroup*> raw;
    backends.reserve(static_cast<std::size_t>(groups));
    for (int i = 0; i < groups; ++i) {
      auto group = std::make_unique<shard::PipelineGroup>(partition, spec,
                                                          pipe_options);
      raw.push_back(group.get());
      backends.push_back(std::move(group));
    }
    serve::Server server(g, batch_schedule, config, nullptr,
                         std::move(backends));
    FleetResult result;
    result.report = server.serve(trace);
    double busy = 0.0;
    double bubble = 0.0;
    for (const shard::PipelineGroup* group : raw) {
      for (const shard::StageCounters& c : group->stage_counters()) {
        busy += c.busy_seconds;
        bubble += c.bubble_seconds;
      }
    }
    result.bubble_fraction =
        busy + bubble > 0.0 ? bubble / (busy + bubble) : 0.0;
    return result;
  };

  const FleetResult replica = run_replica_fleet();
  const FleetResult pipeline = run_pipeline_fleet();

  TextTable table({"Fleet", "Throughput", "p50", "p99", "SLO", "Rejected",
                   "Cost/req", "Bubbles"});
  const auto row = [&](const char* name, const FleetResult& fleet,
                       bool pipelined) {
    const serve::ServingReport& r = fleet.report;
    table.add_row({name, format_double(r.throughput, 0) + " req/s",
                   format_ms(r.p50 * 1e3), format_ms(r.p99 * 1e3),
                   format_percent(r.slo_attainment()),
                   format_percent(r.reject_rate()),
                   format_double(r.cost_per_request() * 1e3, 4) + " dev-ms",
                   pipelined ? format_percent(fleet.bubble_fraction) : "-"});
  };
  row("whole-model (paged)", replica, false);
  row("pipeline groups", pipeline, true);
  std::printf("%s\n", table.to_string().c_str());

  const double ratio = replica.report.throughput > 0.0
                           ? pipeline.report.throughput /
                                 replica.report.throughput
                           : 0.0;
  std::printf(
      "pipeline fleet: %.2fx accepted-request throughput at equal devices "
      "(target >= 1.5x), SLO %.1f%% vs %.1f%%\n",
      ratio, pipeline.report.slo_attainment() * 1e2,
      replica.report.slo_attainment() * 1e2);

  std::ofstream json(flags.get_string("json"));
  json << "{\n";
  char header[512];
  std::snprintf(
      header, sizeof(header),
      "  \"model\": \"%s\",\n  \"input\": %lld,\n  \"devices\": %d,\n"
      "  \"stages\": %d,\n  \"groups\": %d,\n  \"microbatch\": %lld,\n"
      "  \"dram_mb\": %.2f,\n  \"model_resident_mb\": %.2f,\n"
      "  \"paged_mb_per_run\": %.2f,\n  \"offered_rate_rps\": %.1f,\n"
      "  \"duration_s\": %.2f,\n  \"requests\": %lld,\n",
      model.name.c_str(), static_cast<long long>(flags.get_int("input")),
      devices, stages, groups, static_cast<long long>(microbatch),
      static_cast<double>(spec.dram_bytes) / 1e6,
      static_cast<double>(whole_bytes) / 1e6,
      static_cast<double>(paged_bytes) / 1e6, rate, traffic.duration,
      static_cast<long long>(trace.size()));
  json << header;
  json_block(json, "replica", replica);
  json << ",\n";
  json_block(json, "pipeline", pipeline);
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                ",\n  \"throughput_ratio\": %.3f,\n"
                "  \"bubble_fraction\": %.4f\n}\n",
                ratio, pipeline.bubble_fraction);
  json << tail;
  std::printf("JSON written to %s\n", flags.get_string("json").c_str());

  // The acceptance gate: fail loudly so CI catches a regression even
  // before bench_compare diffs the JSON against the committed baseline.
  if (ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: pipeline/replica throughput ratio %.2fx < 1.5x\n",
                 ratio);
    return 1;
  }
  if (pipeline.report.slo_attainment() + 1e-9 <
      replica.report.slo_attainment()) {
    std::fprintf(stderr,
                 "FAIL: pipeline SLO attainment %.4f below replica %.4f\n",
                 pipeline.report.slo_attainment(),
                 replica.report.slo_attainment());
    return 1;
  }
  return 0;
}
