// Reproduces Table 2: sequential vs IOS-optimized inference latency of the
// four candidate models at batch size 1.
//
// Paper: IOS (Ding et al.) schedules measured on an RTX A5500; sequential
// latency is the framework's eager per-operator execution. Here both
// schedules run on the simulated A5500 (src/simgpu): absolute numbers come
// from an analytic cost model, but the comparisons the paper draws —
// optimization always helps, fractions-of-a-millisecond regime, and the
// final model chosen by minimum optimized latency — are reproduced.
#include <cstdio>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/table.hpp"
#include "detect/sppnet_config.hpp"
#include "graph/builder.hpp"
#include "ios/executor.hpp"
#include "ios/scheduler.hpp"
#include "simgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace dcn;
  CliFlags flags("bench_table2_latency", "reproduce Table 2 (latency/model)");
  flags.add_int("input", 100, "input patch size (paper: 100)");
  flags.add_int("batch", 1, "batch size (paper: 1)");
  flags.add_string("csv", "table2.csv", "CSV export path");
  if (!flags.parse(argc, argv)) return 0;

  const auto spec = simgpu::a5500_spec();
  const std::int64_t batch = flags.get_int("batch");
  std::printf(
      "Table 2 — inference latency per candidate model (batch %lld, %s)\n\n",
      static_cast<long long>(batch), spec.name.c_str());

  const double paper_seq[4] = {0.512, 0.419, 0.295, 0.562};
  const double paper_opt[4] = {0.268, 0.379, 0.236, 0.427};

  TextTable table({"Model", "Sequential (paper)", "Optimized (paper)",
                   "Sequential (ours)", "Optimized (ours)", "Speedup"});
  CsvWriter csv({"model", "paper_seq_ms", "paper_opt_ms", "our_seq_ms",
                 "our_opt_ms", "speedup"});

  const auto models = detect::table1_models();
  double best_latency = 1e30;
  std::string best_model;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const graph::Graph g =
        graph::build_inference_graph(models[i], flags.get_int("input"));
    ios::IosOptions options;
    options.batch = batch;
    const ios::Schedule seq = ios::sequential_schedule(g);
    const ios::Schedule opt = ios::optimize_schedule(g, spec, options);
    simgpu::Device d_seq(spec);
    simgpu::Device d_opt(spec);
    const double t_seq = ios::measure_latency(g, seq, d_seq, batch);
    const double t_opt = ios::measure_latency(g, opt, d_opt, batch);
    if (t_opt < best_latency) {
      best_latency = t_opt;
      best_model = models[i].name;
    }
    table.add_row({models[i].name, format_ms(paper_seq[i]),
                   format_ms(paper_opt[i]), format_ms(t_seq * 1e3),
                   format_ms(t_opt * 1e3),
                   format_double(t_seq / t_opt, 2) + "x"});
    csv.add_row({models[i].name, format_double(paper_seq[i], 3),
                 format_double(paper_opt[i], 3),
                 format_double(t_seq * 1e3, 4),
                 format_double(t_opt * 1e3, 4),
                 format_double(t_seq / t_opt, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nselected model (minimum optimized latency): %s — the paper selects "
      "SPP-Net #2 by the same rule\n",
      best_model.c_str());
  csv.write(flags.get_string("csv"));
  std::printf("CSV written to %s\n", flags.get_string("csv").c_str());
  return 0;
}
